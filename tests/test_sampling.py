"""Sampled fidelity (``--fidelity sampled``): convergence, drift
re-arming, error bounds, cache-key isolation and checkpoint/resume.

The unit half drives :class:`~repro.sim.sampling.EventSampler` directly
with synthetic counter deltas — stationary classes must converge and
extrapolate, drifted probes must re-arm detailed mode. The integration
half runs the real simulator on the tiny workload: a model-warm sampled
run must reproduce the full-detail totals exactly (the replay memo makes
deterministic traces exact), sampled errors must sit within the reported
bounds, sampled and full results must never share cache keys, and a
sampled run must checkpoint/resume bit-identically.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import presets, sampling
from repro.sim.config import SamplingConfig, SimConfig
from repro.sim.experiments import ExperimentRunner
from repro.sim.results import SimResult
from repro.sim.sampling import (
    _HEAD_LEN,
    IDX_BRANCH_MISPREDICTS,
    IDX_BRANCHES,
    IDX_CYCLES,
    IDX_INSTRUCTIONS,
    IDX_L1D_ACCESSES,
    IDX_L1D_MISSES,
    IDX_L1I_MISSES,
    EventSampler,
    clear_model_store,
    fidelity_from_env,
)
from repro.sim.simulator import Simulator


@pytest.fixture(autouse=True)
def _fresh_model_store():
    """Each test starts cold and leaves nothing behind for the next."""
    clear_model_store()
    yield
    clear_model_store()


def _vec(cycles=2000.0, instructions=1000, l1i_misses=10,
         l1d_accesses=300, l1d_misses=15, branches=200,
         mispredicts=10) -> list[float]:
    vec = [0.0] * _HEAD_LEN
    vec[IDX_CYCLES] = cycles
    vec[IDX_INSTRUCTIONS] = instructions
    vec[IDX_L1I_MISSES] = l1i_misses
    vec[IDX_L1D_ACCESSES] = l1d_accesses
    vec[IDX_L1D_MISSES] = l1d_misses
    vec[IDX_BRANCHES] = branches
    vec[IDX_BRANCH_MISPREDICTS] = mispredicts
    return vec


def _tight_config(**overrides) -> SamplingConfig:
    knobs = dict(min_detailed=4, window=4, cv_threshold=0.2,
                 probe_every=3, drift_tolerance=0.3)
    knobs.update(overrides)
    return SamplingConfig(**knobs)


class TestConvergence:
    def test_stationary_class_converges_and_extrapolates(self):
        sampler = EventSampler(_tight_config())
        for k in range(4):
            assert sampler.plan(k, cls=7) == "detailed"
            sampler.observe(k, 7, _vec(), weight=1000.0)
        assert sampler.models[7].converged
        assert sampler.plan(99, cls=7) == "extrapolate"

    def test_extrapolation_reproduces_stationary_deltas(self):
        sampler = EventSampler(_tight_config())
        for k in range(4):
            sampler.observe(k, 7, _vec(), weight=1000.0)
        inc = sampler.extrapolate(7, weight=1000.0, measured=True)
        assert inc[IDX_CYCLES] == pytest.approx(2000.0)
        assert inc[IDX_INSTRUCTIONS] == 1000
        assert isinstance(inc[IDX_INSTRUCTIONS], int)

    def test_noisy_class_does_not_converge(self):
        sampler = EventSampler(_tight_config())
        for k in range(8):
            noisy = _vec(cycles=2000.0 * (1 + (k % 2)))  # CV ~ 0.33
            sampler.observe(k, 7, noisy, weight=1000.0)
        assert not sampler.models[7].converged
        assert sampler.plan(99, cls=7) == "detailed"

    def test_trending_class_does_not_converge(self):
        """Low CV but monotonic drift: the trend guard must refuse."""
        sampler = EventSampler(_tight_config(cv_threshold=0.3))
        for k in range(8):
            # geometric ramp: the window CV sits at ~0.25 (inside the
            # 0.3 threshold) while the window halves keep disagreeing
            trending = _vec(cycles=2000.0 * 1.25 ** k)
            sampler.observe(k, 7, trending, weight=1000.0)
        assert not sampler.models[7].converged

    def test_replay_wins_over_everything(self):
        sampler = EventSampler(_tight_config())
        sampler.observe(3, 7, _vec(), weight=1000.0)
        # unconverged (one observation) — yet event 3 replays
        assert sampler.plan(3, cls=7) == "replay"
        assert sampler.replay(3, 7, measured=True) == _vec()


class TestDriftRearm:
    def _converged_sampler(self) -> EventSampler:
        sampler = EventSampler(_tight_config())
        for k in range(4):
            sampler.observe(k, 7, _vec(), weight=1000.0)
        assert sampler.models[7].converged
        return sampler

    def test_probe_scheduled_after_probe_every(self):
        sampler = self._converged_sampler()
        for _ in range(3):  # probe_every = 3
            assert sampler.plan(100, cls=7) == "extrapolate"
            sampler.extrapolate(7, weight=1000.0, measured=True)
        assert sampler.plan(103, cls=7) == "probe"

    def test_drifted_probe_rearms_detailed_mode(self):
        sampler = self._converged_sampler()
        for _ in range(3):
            sampler.extrapolate(7, weight=1000.0, measured=True)
        drifted = _vec(cycles=4000.0)  # 2x the learned rate
        sampler.observe(103, 7, drifted, weight=1000.0,
                        measured=True, probe=True)
        assert sampler.drift_rearms == 1
        assert not sampler.models[7].converged
        assert sampler.models[7].rearms == 1
        # a never-seen event runs detailed again until reconvergence
        assert sampler.plan(200, cls=7) == "detailed"

    def test_clean_probe_keeps_the_model(self):
        sampler = self._converged_sampler()
        for _ in range(3):
            sampler.extrapolate(7, weight=1000.0, measured=True)
        sampler.observe(103, 7, _vec(), weight=1000.0,
                        measured=True, probe=True)
        assert sampler.drift_rearms == 0
        assert sampler.models[7].converged
        assert sampler.plan(200, cls=7) == "extrapolate"

    def test_probes_never_fold_into_the_statistics(self):
        sampler = self._converged_sampler()
        n_before = sampler.models[7].n
        for _ in range(3):
            sampler.extrapolate(7, weight=1000.0, measured=True)
        sampler.observe(103, 7, _vec(cycles=2100.0), weight=1000.0,
                        measured=True, probe=True)
        assert sampler.models[7].n == n_before


class TestErrorBounds:
    def test_zero_without_extrapolation(self):
        sampler = EventSampler(_tight_config())
        for k in range(4):
            sampler.observe(k, 7, _vec(), weight=1000.0)
        bounds = sampler.error_bounds(SimResult(cycles=1.0,
                                                instructions=1))
        assert all(b == 0.0 for b in bounds.values())

    def test_positive_after_noisy_extrapolation(self):
        sampler = EventSampler(_tight_config(cv_threshold=0.5))
        for k in range(6):
            sampler.observe(k, 7, _vec(cycles=2000.0 + 50.0 * (k % 3)),
                            weight=1000.0)
        assert sampler.models[7].converged
        sampler.extrapolate(7, weight=1000.0, measured=True)
        result = SimResult(instructions=7000, cycles=14000.0,
                           l1i_misses=70, l1d_accesses=2100,
                           l1d_misses=105, branches=1400,
                           branch_mispredicts=70)
        bounds = sampler.error_bounds(result)
        assert bounds["cycles"] > 0.0
        assert bounds["ipc"] >= bounds["cycles"]  # quadrature


class TestFidelityEnv:
    @pytest.fixture(autouse=True)
    def _reset_warn_once(self):
        sampling._warned_bad_fidelity = False
        yield
        sampling._warned_bad_fidelity = False

    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        assert fidelity_from_env() is None

    def test_valid_values_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "sampled")
        assert fidelity_from_env() == "sampled"
        monkeypatch.setenv("REPRO_FIDELITY", " FULL ")
        assert fidelity_from_env() == "full"

    def test_invalid_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "approximate")
        with pytest.warns(RuntimeWarning, match="REPRO_FIDELITY"):
            assert fidelity_from_env() is None
        # warn-once: the second read is silent
        assert fidelity_from_env() is None

    def test_simulator_env_fallback(self, tiny_app, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "nonsense")
        with pytest.warns(RuntimeWarning):
            result = Simulator(tiny_app, SimConfig()).run()
        assert result.fidelity == "full"

    def test_ctor_rejects_unknown_fidelity(self, tiny_app):
        with pytest.raises(ValueError, match="fidelity"):
            Simulator(tiny_app, SimConfig(), fidelity="approximate")


PRESETS = [("baseline", SimConfig), ("esp_nl", presets.esp_nl)]


class TestSampledVsFull:
    @pytest.mark.parametrize("name,make_config", PRESETS)
    def test_warm_sampled_run_is_exact(self, tiny_app, name,
                                       make_config):
        """A model-warm sampled run replays every observed event's exact
        delta, so its headline totals equal full detail bit for bit and
        every metric sits inside its (zero) reported bound."""
        full = Simulator(tiny_app, make_config()).run()
        cold = Simulator(tiny_app, make_config(),
                         fidelity="sampled").run()
        warm = Simulator(tiny_app, make_config(),
                         fidelity="sampled").run()
        assert cold.fidelity == warm.fidelity == "sampled"
        assert full.fidelity == "full"
        assert warm.cycles == full.cycles
        assert warm.instructions == full.instructions
        assert warm.ipc == full.ipc
        assert warm.sampled_events > 0
        for metric, bound in warm.error_bounds.items():
            reference = getattr(full, metric)
            assert abs(getattr(warm, metric) - reference) \
                <= bound * abs(reference) + 1e-12, \
                f"{name}: {metric} outside its reported bound"

    def test_full_fidelity_unchanged_by_sampled_runs(self, tiny_app):
        """Sampled activity must never perturb the default path."""
        before = Simulator(tiny_app, SimConfig()).run().to_dict()
        Simulator(tiny_app, SimConfig(), fidelity="sampled").run()
        Simulator(tiny_app, SimConfig(), fidelity="sampled").run()
        after = Simulator(tiny_app, SimConfig()).run().to_dict()
        before.pop("fidelity"), after.pop("fidelity")
        assert after == before

    def test_event_split_accounts_for_every_event(self, tiny_app):
        cold = Simulator(tiny_app, SimConfig(),
                         fidelity="sampled").run()
        assert cold.detailed_events + cold.sampled_events == cold.events


class TestCacheKeyIsolation:
    def test_sampled_and_full_keys_never_collide(self, tmp_path):
        full = ExperimentRunner(cache_dir=tmp_path, scale=0.25, seed=0)
        samp = ExperimentRunner(cache_dir=tmp_path, scale=0.25, seed=0,
                                fidelity="sampled")
        config = SimConfig()
        assert full._key("pixlr", config) != samp._key("pixlr", config)
        assert samp._key("pixlr", config).endswith("-sampled")

    def test_sampled_results_never_pollute_full_cache(self, tmp_path):
        config = SimConfig()
        samp = ExperimentRunner(cache_dir=tmp_path, scale=0.25, seed=0,
                                fidelity="sampled")
        sampled = samp.run("pixlr", config)
        assert sampled.fidelity == "sampled"
        full = ExperimentRunner(cache_dir=tmp_path, scale=0.25, seed=0)
        # the sampled entry must be invisible to the full-fidelity key
        assert full._load_cached(full._key("pixlr", config)) is None
        result = full.run("pixlr", config)
        assert result.fidelity == "full"
        # and each runner round-trips its own entry
        assert samp._load_cached(
            samp._key("pixlr", config)).fidelity == "sampled"
        assert full._load_cached(
            full._key("pixlr", config)).fidelity == "full"


def _collect_sampled_checkpoints(app, config, every=3):
    states = []
    sim = Simulator(app, config, fidelity="sampled")
    sim.checkpoint_every = every
    sim.checkpoint_sink = states.append
    clean = sim.run().to_dict()
    return clean, states


class TestSampledCheckpointResume:
    def test_cold_sampled_resume_is_bit_identical(self, tiny_app):
        clean, states = _collect_sampled_checkpoints(tiny_app,
                                                     SimConfig())
        assert len(states) >= 3
        for state in states:
            state = json.loads(json.dumps(state))
            fresh = Simulator(tiny_app, SimConfig(), fidelity="sampled")
            fresh.restore(state)
            assert fresh.run().to_dict() == clean, \
                f"resume at {state['loop']['position']} diverged"

    def test_warm_sampled_resume_is_bit_identical(self, tiny_app):
        """Resume while the replay memo is live: the checkpointed
        sampler state must carry the memoized deltas across."""
        Simulator(tiny_app, SimConfig(), fidelity="sampled").run()
        clean, states = _collect_sampled_checkpoints(tiny_app,
                                                     SimConfig())
        for state in states:
            state = json.loads(json.dumps(state))
            fresh = Simulator(tiny_app, SimConfig(), fidelity="sampled")
            fresh.restore(state)
            assert fresh.run().to_dict() == clean

    def test_checkpoint_records_fidelity(self, tiny_app):
        _clean, states = _collect_sampled_checkpoints(tiny_app,
                                                      SimConfig())
        assert all(s["fidelity"] == "sampled" for s in states)
        assert all(s["sampling"] is not None for s in states)

    def test_full_checkpoint_has_full_fidelity_tag(self, tiny_app):
        states = []
        sim = Simulator(tiny_app, SimConfig())
        sim.checkpoint_every = 3
        sim.checkpoint_sink = states.append
        sim.run()
        assert all(s["fidelity"] == "full" for s in states)
        assert all(s["sampling"] is None for s in states)

    def test_fidelity_mismatch_rejected_before_mutation(self, tiny_app):
        _clean, states = _collect_sampled_checkpoints(tiny_app,
                                                      SimConfig())
        clean_full = Simulator(tiny_app, SimConfig()).run().to_dict()
        sim = Simulator(tiny_app, SimConfig())  # full-fidelity run
        with pytest.raises(ValueError, match="fidelity"):
            sim.restore(states[0])
        # the rejected restore must not have corrupted the simulator
        assert sim.run().to_dict() == clean_full


class TestResultFidelityFields:
    def test_roundtrip_through_to_dict(self):
        r = SimResult(app="x", config="y", instructions=10, cycles=20.0)
        r.fidelity = "sampled"
        r.detailed_events = 3
        r.sampled_events = 11
        r.error_bounds = {"ipc": 0.01}
        back = SimResult.from_dict(r.to_dict())
        assert back.fidelity == "sampled"
        assert back.detailed_events == 3
        assert back.sampled_events == 11
        assert back.error_bounds == {"ipc": 0.01}

    def test_default_is_full_with_no_bounds(self):
        r = SimResult()
        assert r.fidelity == "full"
        assert r.error_bounds == {}

    def test_rate_properties_guard_degenerate_divisions(self):
        """Regression: every rate property returns 0.0 — not ZeroDivision
        — on an empty result (sampled extrapolation can synthesise
        zero-access windows)."""
        r = SimResult()
        assert r.ipc == 0.0
        assert r.l1i_mpki == 0.0
        assert r.l1d_miss_rate == 0.0
        assert r.branch_misprediction_rate == 0.0
        assert r.extra_instruction_fraction == 0.0
        assert r.speedup_over(SimResult()) == 0.0


class TestSamplingConfigValidation:
    def test_defaults_are_valid(self):
        config = SamplingConfig()
        assert config.min_detailed >= 2
        assert len(config.key()) == 6

    @pytest.mark.parametrize("kwargs", [
        {"min_detailed": 0}, {"window": 1}, {"cv_threshold": 0.0},
        {"probe_every": 0}, {"drift_tolerance": -1.0},
        {"confidence_z": 0.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs)
