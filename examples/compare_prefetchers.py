#!/usr/bin/env python
"""Why conventional prefetchers underperform on asynchronous programs.

Section 2.3's argument: large instruction footprints and unrepeatable
access patterns defeat pattern-based prefetchers, while ESP sidesteps
patterns entirely by *executing* the future. This example compares the
prefetch-effectiveness statistics — issued / useful / late — of next-line,
stride, runahead and ESP on one app.

Usage:
    python examples/compare_prefetchers.py [app] [scale]
"""

import sys

from repro import presets, simulate
from repro.workloads import APP_NAMES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "cnn"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}")

    base = simulate(app, presets.baseline(), scale=scale)
    print(f"app={app}, scale={scale}\n")
    header = (f"{'configuration':<16}{'speedup':>9}{'pf-I':>8}{'useful':>8}"
              f"{'late':>7}{'pf-D':>8}{'useful':>8}{'late':>7}")
    print(header)
    print("-" * len(header))

    for cfg in (presets.nl(), presets.nl_s(), presets.runahead_nl(),
                presets.esp_nl()):
        r = simulate(app, cfg, scale=scale)
        print(f"{cfg.name:<16}{r.speedup_over(base):>8.2f}x"
              f"{r.prefetches_issued_i:>8,}{r.prefetches_useful_i:>8,}"
              f"{r.prefetches_late_i:>7,}"
              f"{r.prefetches_issued_d:>8,}{r.prefetches_useful_d:>8,}"
              f"{r.prefetches_late_d:>7,}")

    esp = simulate(app, presets.esp_nl(), scale=scale)
    stats = esp.esp
    print(f"\nESP internals: {stats.mode_entries:,} sneak-peek entries, "
          f"{stats.total_pre_instructions:,} pre-executed instructions, "
          f"{stats.hinted_events} hinted events "
          f"({stats.pre_complete_events} pre-executed to completion), "
          f"{stats.list_prefetches_i:,} I-list and "
          f"{stats.list_prefetches_d:,} D-list prefetches, "
          f"{stats.blist_trained:,} B-list trainings, "
          f"{stats.list_overflows:,} list-capacity hits.")
    print("ESP's prefetches come from recorded future-event addresses, so "
          "they stay accurate where pattern prefetchers have nothing to "
          "learn from.")


if __name__ == "__main__":
    main()
