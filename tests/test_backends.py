"""Execution backends: parity, deadline accounting, auto-pick, plumbing.

The pluggable backend layer (:mod:`repro.exec`) owns how ``run_many``
batches fan out. The contract pinned here:

* every backend — serial, thread, process, and whatever ``auto``
  resolves to — produces bit-identical :class:`SimResult` objects and
  writes identically-keyed cache files, across every hot-loop kernel;
* per-task deadlines are measured from task *start*: a task queued
  behind busy workers of a deliberately oversubscribed pool is never
  charged its queue wait, and a straggler's abandonment never converts
  queued siblings into spurious timeouts (they are ``requeued``);
* one pool break is accounted as ONE worker death, with the flooded
  sibling tasks counted as ``requeued``;
* ``auto`` never picks ``process`` on a single-CPU machine (and runs no
  probe there at all), degrades to ``thread`` where worker processes are
  unavailable or too slow to start, and records its choice;
* ``REPRO_BACKEND`` / the ``backend`` constructor argument / backend
  derivation from the worker count behave like every other harness knob
  (constructor > env > derived, malformed env warns once and falls
  back).
"""

import os
import time

import pytest

import repro.exec.auto as auto_mod
import repro.sim.experiments as experiments_mod
from repro.exec import (BACKEND_NAMES, ProcessBackend, RemoteBackend,
                        SerialBackend, ThreadBackend, auto_pick,
                        make_backend)
from repro.obs import metrics as metrics_mod
from repro.obs.runlog import iter_records
from repro.obs.stats import format_table, summarize
from repro.sim import presets
from repro.sim.experiments import ExperimentRunner, GridTaskError
from repro.sim.experiments import _run_remote as _real_run_remote

APPS = ("bing", "pixlr")
CONFIGS = ("baseline", "nl")

#: seconds each napping task holds its worker (see the queue-wait tests)
NAP_S = 1.0


def _napping_remote(app, config, scale, seed, cache_dir, use_disk_cache,
                    log_dir=None, attempt=1, **kwargs):
    """Worker stand-in that holds its worker for :data:`NAP_S` before
    simulating, so tasks queued behind it accumulate real queue wait
    (module-level so it pickles under fork and spawn alike)."""
    time.sleep(NAP_S)
    return _real_run_remote(app, config, scale, seed, cache_dir,
                            use_disk_cache, log_dir, attempt, **kwargs)


def _wedged_remote(app, config, scale, seed, cache_dir, use_disk_cache,
                   log_dir=None, attempt=1, **kwargs):
    """Worker stand-in that wedges forever on bing (well past any test
    deadline) and behaves for every other app."""
    if app == "bing":
        time.sleep(8.0)
    return _real_run_remote(app, config, scale, seed, cache_dir,
                            use_disk_cache, log_dir, attempt, **kwargs)


def _dying_remote(app, config, scale, seed, cache_dir, use_disk_cache,
                  log_dir=None, attempt=1, **kwargs):
    """Worker stand-in that kills its process before producing anything."""
    os._exit(3)


def _pairs():
    return [(app, presets.by_name(name)) for name in CONFIGS
            for app in APPS]


@pytest.fixture
def recording_metrics():
    registry = metrics_mod.MetricsRegistry()
    previous = metrics_mod.set_registry(registry)
    yield registry
    metrics_mod.set_registry(previous)


@pytest.fixture
def fresh_auto_cache():
    """Isolate each test's auto-pick from the per-process memoization."""
    auto_mod._choice_cache.clear()
    yield
    auto_mod._choice_cache.clear()


class TestBackendParity:
    def test_all_backends_bit_identical_with_identical_cache_keys(
            self, tmp_path):
        """The acceptance matrix: the same grid through the serial,
        thread, process and remote (self-hosted socket workers) backends
        yields bit-identical results AND identically-named
        (= identically-keyed) cache files."""
        reference = None
        ref_files = None
        for backend in ("serial", "thread", "process", "remote"):
            runner = ExperimentRunner(cache_dir=tmp_path / backend,
                                      scale=0.1, seed=0, jobs=2,
                                      backend=backend)
            got = [r.to_dict() for r in runner.run_many(_pairs())]
            files = sorted(p.name
                           for p in (tmp_path / backend).glob("*.json"))
            if reference is None:
                reference, ref_files = got, files
            else:
                assert got == reference, f"{backend} diverged"
                assert files == ref_files, f"{backend} keyed differently"
        assert ref_files  # the grid really cached something

    @pytest.mark.parametrize("kernel", ["object", "packed", "vector"])
    def test_parity_holds_across_kernels(self, tmp_path, monkeypatch,
                                         kernel):
        """Spot check: backend parity is kernel-independent."""
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        pairs = [("bing", presets.baseline()),
                 ("bing", presets.by_name("nl"))]
        outs = []
        for backend in ("serial", "thread", "process"):
            runner = ExperimentRunner(
                cache_dir=tmp_path / f"{kernel}-{backend}", scale=0.1,
                seed=0, jobs=2, backend=backend)
            outs.append([r.to_dict() for r in runner.run_many(pairs)])
        assert outs[0] == outs[1] == outs[2]

    def test_auto_backend_matches_serial(self, tmp_path, fresh_auto_cache):
        """Whatever ``auto`` resolves to on this machine, the results are
        the serial results, and the resolution is recorded."""
        pairs = [("bing", presets.baseline())]
        serial = ExperimentRunner(cache_dir=tmp_path / "serial", scale=0.1,
                                  seed=0, backend="serial")
        auto = ExperimentRunner(cache_dir=tmp_path / "auto", scale=0.1,
                                seed=0, backend="auto")
        assert [r.to_dict() for r in auto.run_many(pairs)] \
            == [r.to_dict() for r in serial.run_many(pairs)]
        assert auto.backend_name in ("serial", "thread", "process")
        assert auto.backend_choice is not None
        assert auto.backend_choice.backend == auto.backend_name


class TestDeadlineFromTaskStart:
    def test_queued_tasks_survive_an_oversubscribed_pool(
            self, tmp_path, monkeypatch, recording_metrics):
        """Three ~1s tasks through a deliberately oversubscribed
        single-worker pool, with a deadline each task's *runtime* beats
        comfortably but the third task's submit-to-finish wall time
        (3 naps + 3 simulations) blows well past. Measured from task
        start, nothing times out; measured from submission — the old
        accounting — the tail of the queue would be abandoned."""
        monkeypatch.setattr("repro.sim.experiments._run_remote",
                            _napping_remote)
        baseline = presets.baseline()
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.05, seed=0,
                                  jobs=1, backend="process",
                                  task_timeout=2.5, max_attempts=1)
        pairs = [("bing", baseline), ("pixlr", baseline),
                 ("bing", presets.nl())]
        results = runner.run_many(pairs)
        assert [r.app for r in results] == ["bing", "pixlr", "bing"]
        assert runner.retries == 0  # nothing timed out, nothing requeued
        counters = recording_metrics.snapshot()["counters"]
        assert counters.get("runner.task_timeouts", 0) == 0
        # the queue wait was observed, not charged: the tail task sat
        # queued for two full naps — far beyond any per-task runtime
        hist = recording_metrics.snapshot()["histograms"]
        wait = hist["backend.queue_wait_s"]
        assert wait["count"] == len(pairs)
        assert wait["max"] > 2 * NAP_S

    def test_straggler_does_not_time_out_queued_siblings(
            self, tmp_path, monkeypatch, recording_metrics):
        """A wedged task pins the only worker; the sibling queued behind
        it can never start. The straggler is the ONLY timeout — the
        sibling is handed back as ``requeued`` (the stall guard) and
        completes serially instead of being blamed for the wait."""
        monkeypatch.setattr("repro.sim.experiments._run_remote",
                            _wedged_remote)
        log_dir = tmp_path / "logs"
        baseline = presets.baseline()
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.05, seed=0,
                                  jobs=1, backend="process",
                                  task_timeout=1.0, max_attempts=1,
                                  log_dir=log_dir)
        with pytest.raises(GridTaskError) as info:
            runner.run_many([("bing", baseline), ("pixlr", baseline)])
        # bing (and only bing) failed, on its timeout
        assert [app for _, app, _ in info.value.failures] == ["bing"]
        reasons_by_app: dict = {}
        for record in iter_records(log_dir):
            if record.get("kind") == "retry":
                reasons_by_app.setdefault(record["app"],
                                          []).append(record["reason"])
        assert set(reasons_by_app.get("bing", [])) == {"timeout"}
        # pixlr was never charged a timeout it didn't earn
        assert set(reasons_by_app.get("pixlr", [])) == {"requeued"}
        counters = recording_metrics.snapshot()["counters"]
        assert counters.get("runner.tasks_requeued", 0) == 1
        # and it completed serially: its result is on disk for next time
        fresh = ExperimentRunner(cache_dir=tmp_path, scale=0.05, seed=0,
                                 jobs=1, backend="serial",
                                 log_dir=log_dir)
        assert fresh.run("pixlr", baseline).app == "pixlr"
        hits = [r for r in iter_records(log_dir)
                if r.get("kind") == "run" and r.get("app") == "pixlr"
                and r.get("cache") in ("memory", "disk")]
        assert hits  # the serial completion cached it


class TestPoolBreakAccounting:
    def test_one_pool_break_is_one_worker_death(self, tmp_path,
                                                monkeypatch,
                                                recording_metrics):
        """Every worker dying floods every in-flight future with
        ``BrokenProcessPool``; exactly ONE death is counted and the
        surviving tasks are ``requeued``, then completed serially."""
        monkeypatch.setattr("repro.sim.experiments._run_remote",
                            _dying_remote)
        baseline = presets.baseline()
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.1, seed=0,
                                  jobs=2, backend="process")
        pairs = [("bing", baseline), ("pixlr", baseline),
                 ("bing", presets.nl())]
        results = runner.run_many(pairs)
        assert [r.app for r in results] == ["bing", "pixlr", "bing"]
        counters = recording_metrics.snapshot()["counters"]
        assert counters.get("runner.worker_deaths", 0) == 1
        assert counters.get("runner.tasks_requeued", 0) == len(pairs) - 1
        assert runner.retries == len(pairs)


class TestAutoPick:
    def test_single_cpu_is_serial_and_never_probes(self, monkeypatch,
                                                   fresh_auto_cache):
        monkeypatch.setattr(
            auto_mod, "_spin_score",
            lambda *a, **k: pytest.fail("probe ran on a single-CPU pick"))
        monkeypatch.setattr(
            auto_mod, "_process_roundtrip",
            lambda *a, **k: pytest.fail("probe ran on a single-CPU pick"))
        choice = auto_pick(cpus=1)
        assert choice.backend == "serial"
        assert choice.spin_score is None
        assert choice.process_roundtrip_s is None

    def test_multi_cpu_with_fast_workers_is_process(self, monkeypatch,
                                                    fresh_auto_cache):
        monkeypatch.setattr(auto_mod, "_spin_score", lambda *a, **k: 1e6)
        monkeypatch.setattr(auto_mod, "_process_roundtrip",
                            lambda *a, **k: 0.01)
        choice = auto_pick(cpus=8)
        assert choice.backend == "process"
        assert choice.cpus == 8
        assert choice.process_roundtrip_s == 0.01

    def test_unspawnable_workers_degrade_to_thread(self, monkeypatch,
                                                   fresh_auto_cache):
        monkeypatch.setattr(auto_mod, "_spin_score", lambda *a, **k: 1e6)
        monkeypatch.setattr(auto_mod, "_process_roundtrip",
                            lambda *a, **k: None)
        assert auto_pick(cpus=4).backend == "thread"

    def test_slow_worker_roundtrip_degrades_to_thread(self, monkeypatch,
                                                      fresh_auto_cache):
        monkeypatch.setattr(auto_mod, "_spin_score", lambda *a, **k: 1e6)
        monkeypatch.setattr(
            auto_mod, "_process_roundtrip",
            lambda *a, **k: auto_mod.ROUNDTRIP_CEILING_S * 5)
        choice = auto_pick(cpus=4)
        assert choice.backend == "thread"
        assert "round-trip" in choice.reason

    def test_choice_is_memoized_per_cpu_count(self, monkeypatch,
                                              fresh_auto_cache):
        monkeypatch.setattr(auto_mod, "_spin_score", lambda *a, **k: 1e6)
        monkeypatch.setattr(auto_mod, "_process_roundtrip",
                            lambda *a, **k: 0.01)
        first = auto_pick(cpus=4)
        monkeypatch.setattr(
            auto_mod, "_process_roundtrip",
            lambda *a, **k: pytest.fail("probed twice for one machine"))
        assert auto_pick(cpus=4) is first
        # a different machine shape probes afresh
        monkeypatch.setattr(auto_mod, "_process_roundtrip",
                            lambda *a, **k: 0.01)
        assert auto_pick(cpus=2) is not first

    def test_runner_never_picks_process_on_single_cpu(self, tmp_path,
                                                      monkeypatch,
                                                      fresh_auto_cache):
        """End to end through the runner: on a single-CPU machine,
        ``backend=auto`` resolves to serial — never a process pool."""
        monkeypatch.setattr(experiments_mod, "available_cpus", lambda: 1)
        log_dir = tmp_path / "logs"
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.1, seed=0,
                                  backend="auto", log_dir=log_dir)
        runner.run_many([("bing", presets.baseline())])
        assert runner.backend_name == "serial"
        assert runner.backend_choice.backend == "serial"
        choices = [r for r in iter_records(log_dir)
                   if r.get("kind") == "backend-choice"]
        assert len(choices) == 1
        assert choices[0]["backend"] == "serial"
        assert choices[0]["cpus"] == 1

    def test_to_record_is_json_shaped(self, fresh_auto_cache):
        record = auto_pick(cpus=1).to_record()
        assert set(record) == {"backend", "cpus", "spin_score",
                               "process_roundtrip_s", "reason"}


class TestBackendConfiguration:
    def test_env_sets_requested_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        runner = ExperimentRunner(use_disk_cache=False)
        assert runner.backend_requested == "thread"

    def test_env_is_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  Thread ")
        assert ExperimentRunner(
            use_disk_cache=False).backend_requested == "thread"

    def test_malformed_env_warns_once_and_derives(self, monkeypatch):
        monkeypatch.setattr(experiments_mod, "_warned_envs", set())
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.warns(RuntimeWarning, match="REPRO_BACKEND"):
            runner = ExperimentRunner(use_disk_cache=False)
        assert runner.backend_requested is None

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        runner = ExperimentRunner(use_disk_cache=False, backend="serial")
        assert runner.backend_requested == "serial"

    def test_invalid_constructor_backend_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            ExperimentRunner(use_disk_cache=False, backend="quantum")

    def test_backend_derives_from_worker_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert ExperimentRunner(
            use_disk_cache=False, jobs=2)._resolve_backend().name \
            == "process"
        assert ExperimentRunner(
            use_disk_cache=False, jobs=1)._resolve_backend().name \
            == "serial"

    def test_make_backend_rejects_unknown_and_auto(self):
        with pytest.raises(ValueError):
            make_backend("quantum")
        with pytest.raises(ValueError):
            make_backend("auto")  # auto is a picker, not a backend

    def test_backend_registry_shape(self):
        assert BACKEND_NAMES == ("serial", "thread", "process", "remote",
                                 "auto")
        assert SerialBackend().parallel is False
        assert ThreadBackend().parallel is True
        assert ProcessBackend().parallel is True
        assert RemoteBackend().parallel is True


class TestBackendObservability:
    def test_run_records_are_stamped_and_stats_show_the_column(
            self, tmp_path):
        """Simulated runs carry the backend that served them; the stats
        reducer tallies them into the per-app ``backend`` column and the
        ``backends —`` summary line."""
        log_dir = tmp_path / "logs"
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.1, seed=0,
                                  jobs=2, backend="thread",
                                  log_dir=log_dir)
        runner.run_many([("bing", presets.baseline())])
        simulated = [r for r in iter_records(log_dir)
                     if r.get("kind") == "run"
                     and r.get("cache") == "simulated"]
        assert simulated
        assert all(r["backend"] == "thread" for r in simulated)
        summary = summarize(iter_records(log_dir))
        assert summary["backends"] == {"thread": len(simulated)}
        table = format_table(summary)
        assert "backend" in table
        assert "backends — thread:" in table

    def test_serial_runs_are_stamped_serial(self, tmp_path):
        log_dir = tmp_path / "logs"
        runner = ExperimentRunner(cache_dir=tmp_path, scale=0.1, seed=0,
                                  backend="serial", log_dir=log_dir)
        runner.run("bing", presets.baseline())
        [record] = [r for r in iter_records(log_dir)
                    if r.get("kind") == "run"]
        assert record["backend"] == "serial"

    def test_worker_error_is_handed_back_not_raised(self, tmp_path,
                                                    monkeypatch,
                                                    recording_metrics):
        """A genuine exception inside a pool task lands in the serial
        ladder's bookkeeping (``error`` retries, ``GridTaskError`` after
        the budget) on every backend, instead of crashing ``run_many``."""
        def poisoned(self, app, cfg, **kwargs):
            raise RuntimeError("injected simulation bug")

        monkeypatch.setattr(ExperimentRunner, "_simulate", poisoned)
        for backend in ("thread", "process"):
            runner = ExperimentRunner(cache_dir=tmp_path / backend,
                                      scale=0.1, seed=0, jobs=2,
                                      backend=backend, max_attempts=1,
                                      retry_backoff=0.0)
            with pytest.raises(GridTaskError) as info:
                runner.run_many([("bing", presets.baseline())])
            assert "injected simulation bug" in str(info.value)
        assert recording_metrics.snapshot()["counters"].get(
            "runner.task_errors", 0) >= 2
