"""Deterministic fault injection for the experiment harness.

``REPRO_FAULTS`` holds a comma-separated spec of fault kinds and firing
rates, e.g.::

    REPRO_FAULTS="corrupt_trace:0.1,kill_worker:0.05,torn_write:0.02,seed:7"

Kinds:

* ``corrupt_trace`` — flip one seeded byte of a just-written ``.espt``
  trace file (exercises the CRC footer + quarantine + regenerate path).
* ``torn_write`` — truncate a result-cache payload at a seeded point
  before it lands (exercises the digest envelope).
* ``kill_worker`` — ``os._exit`` a pool worker at task start (exercises
  ``BrokenProcessPool`` recovery and the timeout-bounded serial retry).
* ``kill_mid_sim`` — ``os._exit`` a pool worker at a mid-simulation event
  boundary, after that boundary's checkpoint has landed (exercises
  checkpointed resume: the retry must continue from the checkpoint, not
  restart, and still produce a bit-identical result).
* ``stall_worker`` — hang a pool worker at an event boundary long enough
  that the parent's heartbeat watchdog declares it stalled and kills it
  (exercises :class:`~repro.resilience.watchdog.WorkerWatchdog`).
* ``interrupt`` — raise :class:`GridInterrupt` in the parent between grid
  tasks (exercises manifest persistence and ``repro run --resume``).
* ``drop_conn`` — a remote worker abandons its coordinator connection
  right as a task lands (exercises the lease-steal / reconnect path of
  :mod:`repro.exec.remote`).
* ``slow_socket`` — a remote worker delays sending its result by a
  seeded fraction of :data:`MAX_SOCKET_DELAY_S` (exercises lease renewal
  under slow links).
* ``dup_result`` — a remote worker delivers its result twice (exercises
  the coordinator's at-most-once commit: the duplicate must be a no-op,
  never a second cache write).
* ``stale_lease`` — a remote worker suppresses its heartbeats for one
  task so the lease expires mid-run (exercises expiry-driven stealing
  even though the worker is alive and may still deliver late).
* ``corrupt_chunk`` — the coordinator damages one seeded byte of an
  artifact-transfer chunk while keeping its stated CRC (exercises the
  per-chunk transport check of :mod:`repro.store`: the fetch must read
  as a retryable miss, never as data).
* ``truncated_fetch`` — a worker "loses" the tail chunks of an artifact
  fetch from a seeded cut point (the frames are still drained so the
  protocol stays in sync; the short assembly must fail the size check
  and retry, never land).
* ``slow_fetch`` — the coordinator delays serving an artifact by a
  seeded fraction of :data:`MAX_SOCKET_DELAY_S` (exercises fetch-path
  lease renewal under slow links).

Every decision is a pure function of ``(seed, kind, token, draw index)``
— no wall clock, no process RNG — so a fault schedule replays exactly
under the same spec. The draw index advances per ``(kind, token)``: a
retried task (whose token embeds the attempt number) or a regenerated
artifact draws fresh, so injected faults cannot pin a task down forever.
The chaos suite (``tests/test_chaos.py``) uses this to prove that grids
run under injected faults terminate with results bit-identical to a
clean serial run.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from pathlib import Path

from repro.obs.metrics import get_registry

_FAULTS_ENV = "REPRO_FAULTS"

#: the fault kinds the harness wires up (unknown kinds in a spec are
#: carried but never queried)
KNOWN_KINDS = ("corrupt_trace", "torn_write", "kill_worker",
               "kill_mid_sim", "stall_worker", "interrupt",
               "drop_conn", "slow_socket", "dup_result", "stale_lease",
               "corrupt_chunk", "truncated_fetch", "slow_fetch")

#: ceiling on the seeded ``slow_socket`` send delay (seconds) — long
#: enough to reorder deliveries against fresh leases, short enough that
#: a chaos storm still terminates promptly
MAX_SOCKET_DELAY_S = 0.5

#: malformed spec parts already warned about (one warning per part)
_warned_parts: set[str] = set()


class GridInterrupt(KeyboardInterrupt):
    """Injected mid-grid interrupt (a stand-in for Ctrl-C / SIGKILL of the
    campaign driver). Subclasses :class:`KeyboardInterrupt` so broad
    ``except Exception`` handlers cannot swallow it."""


class FaultPlan:
    """A parsed fault spec plus the deterministic draw state."""

    def __init__(self, rates: dict[str, float] | None = None,
                 seed: int = 0) -> None:
        self.rates = {kind: min(max(float(rate), 0.0), 1.0)
                      for kind, rate in (rates or {}).items()}
        self.seed = int(seed)
        self._draws: dict[tuple[str, str], int] = {}

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire."""
        return any(self.rates.values())

    # -- deterministic draws ---------------------------------------------------

    def fires(self, kind: str, token: str) -> bool:
        """Whether fault ``kind`` fires for ``token`` on this draw.

        Deterministic in ``(seed, kind, token, draw index)``; the index
        advances per call so repeated draws for the same token (retries,
        regenerated artifacts) are independent.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        slot = (kind, token)
        n = self._draws.get(slot, 0)
        self._draws[slot] = n + 1
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{token}|{n}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2 ** 64
        if draw < rate:
            get_registry().inc(f"faults.{kind}")
            return True
        return False

    def position(self, token: str, size: int) -> int:
        """A seeded byte position in ``[0, size)`` for ``token``."""
        digest = hashlib.sha256(
            f"{self.seed}|pos|{token}|{size}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % max(1, size)

    def delay_s(self, kind: str, token: str,
                max_s: float = MAX_SOCKET_DELAY_S) -> float:
        """A seeded delay in ``[0, max_s)`` when ``kind`` fires for
        ``token``, else 0.0 — the injection site just sleeps the return
        value, so non-firing draws cost nothing."""
        if not self.fires(kind, token):
            return 0.0
        digest = hashlib.sha256(
            f"{self.seed}|delay|{kind}|{token}".encode()).digest()
        return max_s * (int.from_bytes(digest[:8], "big") / 2 ** 64)

    # -- injection sites -------------------------------------------------------

    def corrupt_file(self, path: Path | str, token: str) -> bool:
        """Flip one seeded byte of ``path`` when ``corrupt_trace`` fires."""
        if not self.fires("corrupt_trace", token):
            return False
        path = Path(path)
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return False
        if not data:
            return False
        data[self.position(token, len(data))] ^= 0x40
        try:
            path.write_bytes(bytes(data))
        except OSError:
            return False
        return True

    def torn(self, payload: str, token: str) -> str | None:
        """The truncated payload when ``torn_write`` fires, else None."""
        if not self.fires("torn_write", token):
            return None
        return payload[:self.position(token, max(len(payload) - 1, 1))]

    def maybe_kill_worker(self, token: str) -> None:
        """``os._exit`` the process when ``kill_worker`` fires (the abrupt
        death — no exception, no cleanup — a real OOM kill produces)."""
        if self.fires("kill_worker", token):
            os._exit(137)

    def maybe_kill_mid_sim(self, token: str) -> None:
        """``os._exit`` the process when ``kill_mid_sim`` fires. Wired to
        the simulator's event hook *after* the boundary's checkpoint is
        persisted, so the death always leaves a resumable generation."""
        if self.fires("kill_mid_sim", token):
            os._exit(137)

    def maybe_stall(self, token: str, duration: float = 30.0) -> None:
        """Sleep ``duration`` seconds when ``stall_worker`` fires — far
        longer than any test watchdog timeout, so the parent's heartbeat
        sweep (not this sleep expiring) is what ends the worker."""
        if self.fires("stall_worker", token):
            time.sleep(duration)

    def maybe_interrupt(self, token: str) -> None:
        """Raise :class:`GridInterrupt` when ``interrupt`` fires."""
        if self.fires("interrupt", token):
            raise GridInterrupt(f"injected interrupt before {token}")

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str | None) -> "FaultPlan":
        """Parse a ``kind:rate,...`` spec (malformed parts warn once and
        are skipped; ``seed:N`` sets the draw seed)."""
        rates: dict[str, float] = {}
        seed = 0
        for part in (spec or "").split(","):
            part = part.strip()
            if not part:
                continue
            name, _, raw = part.partition(":")
            name = name.strip()
            try:
                value = float(raw)
            except ValueError:
                if part not in _warned_parts:
                    _warned_parts.add(part)
                    warnings.warn(
                        f"ignoring malformed {_FAULTS_ENV} entry {part!r}",
                        RuntimeWarning, stacklevel=3)
                continue
            if name == "seed":
                seed = int(value)
            else:
                rates[name] = value
        return cls(rates, seed)

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan described by ``REPRO_FAULTS`` (inactive when unset)."""
        return cls.from_spec(os.environ.get(_FAULTS_ENV))


#: lazily initialised process-wide plan (see :func:`get_fault_plan`)
_PLAN: FaultPlan | None = None


def get_fault_plan() -> FaultPlan:
    """The process-wide fault plan; first call parses ``REPRO_FAULTS``.

    Worker processes inherit the environment, so a spec set in the parent
    injects faults on both sides of the process-pool boundary.
    """
    global _PLAN
    if _PLAN is None:
        _PLAN = FaultPlan.from_env()
    return _PLAN


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` (None re-arms lazy env parsing); returns the
    previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous
