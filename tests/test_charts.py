"""Tests for the terminal bar-chart helpers."""

from repro.analysis.charts import bar_chart, grouped_chart, hbar


class TestHbar:
    def test_full_bar(self):
        assert hbar(10, 10, width=4) == "████"

    def test_half_bar(self):
        assert hbar(5, 10, width=4) == "██"

    def test_zero(self):
        assert hbar(0, 10) == ""
        assert hbar(5, 0) == ""

    def test_partial_cell(self):
        bar = hbar(1, 16, width=4)  # 0.25 cells
        assert len(bar) == 1
        assert bar != "█"

    def test_clamps_overflow(self):
        assert hbar(20, 10, width=4) == "████"


class TestBarChart:
    def test_renders_all_labels(self):
        chart = bar_chart({"NL": 10.0, "ESP": 30.0}, title="fig")
        assert "fig" in chart
        assert "NL" in chart and "ESP" in chart
        assert "30.00" in chart

    def test_scaling_relative_to_peak(self):
        chart = bar_chart({"a": 10.0, "b": 20.0}, width=10)
        line_a, line_b = chart.splitlines()
        assert line_b.count("█") == 10
        assert line_a.count("█") == 5

    def test_negative_values_marked(self):
        chart = bar_chart({"bad": -5.0, "good": 5.0})
        bad_line = chart.splitlines()[0]
        assert "-" in bad_line

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_unit_suffix(self):
        assert "%" in bar_chart({"a": 1.0}, unit="%")


class TestGroupedChart:
    def test_groups_share_scale(self):
        chart = grouped_chart({"g1": {"a": 10.0}, "g2": {"b": 20.0}},
                              width=10)
        lines = chart.splitlines()
        a_line = next(line for line in lines if " a " in line)
        b_line = next(line for line in lines if " b " in line)
        assert b_line.count("█") == 10
        assert a_line.count("█") == 5

    def test_group_headers(self):
        chart = grouped_chart({"g1": {"a": 1.0}})
        assert "g1:" in chart

    def test_empty(self):
        assert grouped_chart({}, title="t") == "t"
