"""Resumable grid manifests.

A campaign (one ``run_many`` batch — a figure grid, a parameter sweep, a
``repro run`` invocation) writes a manifest into
``<cache>/manifests/grid-<id>.json`` recording every task's app, full
configuration, status (``pending`` / ``done`` / ``failed``), attempt
count and last error. Each update rewrites the file atomically
(write-to-temp + rename) with an embedded content digest, so an
interrupted campaign leaves a consistent manifest behind and
``repro run --resume`` can pick the work back up from exactly where it
stopped instead of re-planning the grid.

The grid identity hashes the (app, config digest) pairs plus scale and
seed — *not* the result-schema digest — so a manifest survives result
layout changes (its task statuses reset along with the invalidated
cache entries). Configurations round-trip through
:func:`config_to_dict` / :func:`config_from_dict`, preserving
``SimConfig.cache_key`` exactly, so resumed tasks hit the same cache
entries as the original run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

from repro.obs.metrics import get_registry
from repro.resilience.integrity import (IntegrityError, canonical_json,
                                        payload_digest, quarantine)

MANIFEST_VERSION = 1


# -- SimConfig round trip ------------------------------------------------------

def config_to_dict(config) -> dict:
    """JSON-serialisable form of a :class:`~repro.sim.config.SimConfig`."""
    data = dataclasses.asdict(config)
    data["esp"]["bp_mode"] = config.esp.bp_mode.value
    return data


def config_from_dict(data: dict):
    """Rebuild a :class:`~repro.sim.config.SimConfig` from
    :func:`config_to_dict` output, preserving ``cache_key()`` exactly
    (enums and tuple-typed fields are restored to their real types)."""
    from repro.sim.config import (BranchPredictorConfig, CacheConfig,
                                  CoreConfig, EspBpMode, EspConfig,
                                  MemoryConfig, PerfectConfig,
                                  PrefetchConfig, RunaheadConfig, SimConfig)

    esp = dict(data["esp"])
    esp["bp_mode"] = EspBpMode(esp["bp_mode"])
    for name in ("i_cachelet_bytes", "d_cachelet_bytes", "i_list_bytes",
                 "d_list_bytes", "b_list_dir_bytes", "b_list_tgt_bytes"):
        esp[name] = tuple(esp[name])
    memory = data["memory"]
    return SimConfig(
        name=data["name"],
        core=CoreConfig(**data["core"]),
        memory=MemoryConfig(
            l1i=CacheConfig(**memory["l1i"]),
            l1d=CacheConfig(**memory["l1d"]),
            l2=CacheConfig(**memory["l2"]),
            dram_latency=memory["dram_latency"],
            dram_line_transfer_cycles=memory["dram_line_transfer_cycles"]),
        prefetch=PrefetchConfig(**data["prefetch"]),
        branch=BranchPredictorConfig(**data["branch"]),
        esp=EspConfig(**esp),
        runahead=RunaheadConfig(**data["runahead"]),
        perfect=PerfectConfig(**data["perfect"]),
    )


# -- the manifest --------------------------------------------------------------

class GridManifest:
    """On-disk record of one campaign's tasks, atomically updated."""

    def __init__(self, path: Path | str, data: dict) -> None:
        self.path = Path(path)
        self._data = data

    # -- properties ------------------------------------------------------------

    @property
    def grid_id(self) -> str:
        return self._data["grid_id"]

    @property
    def label(self) -> str | None:
        return self._data.get("label")

    @property
    def scale(self) -> float:
        return self._data["scale"]

    @property
    def seed(self) -> int:
        return self._data["seed"]

    @property
    def tasks(self) -> dict[str, dict]:
        """Task records keyed by result-cache key."""
        return self._data["tasks"]

    def tasks_in_order(self) -> list[dict]:
        """Task records in original grid order (each carries its key)."""
        ordered = sorted(self.tasks.items(), key=lambda kv: kv[1]["index"])
        return [{"key": key, **task} for key, task in ordered]

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over every task."""
        out: dict[str, int] = {}
        for task in self.tasks.values():
            out[task["status"]] = out.get(task["status"], 0) + 1
        return out

    @property
    def is_complete(self) -> bool:
        return all(task["status"] == "done"
                   for task in self.tasks.values())

    @property
    def completed_at(self) -> float | None:
        return self._data.get("completed")

    # -- identity --------------------------------------------------------------

    @staticmethod
    def grid_identity(entries, scale, seed) -> str:
        """Stable id of a grid: sorted (app, config digest) pairs plus
        scale and seed (schema-independent, so manifests survive result
        layout bumps)."""
        body = "\n".join(sorted(f"{app}|{digest}"
                                for app, digest in entries))
        body += f"\n|s{scale!r}|r{seed}"
        return hashlib.sha256(body.encode()).hexdigest()[:12]

    # -- construction ----------------------------------------------------------

    @classmethod
    def create_or_load(cls, directory: Path | str, tasks: list[dict], *,
                       scale: float, seed: int,
                       label: str | None = None) -> "GridManifest":
        """The manifest for this task set: loads and merges an existing
        one (resume), recreates a corrupt one (after quarantining it),
        creates a fresh one otherwise.

        ``tasks`` entries carry ``key``, ``app``, ``config_name``,
        ``config_digest`` and ``config`` (a :func:`config_to_dict` dict).
        Statuses of matching keys survive the merge; keys that no longer
        match (schema bump invalidated the cache) are replaced as
        pending.
        """
        directory = Path(directory)
        gid = cls.grid_identity(
            [(t["app"], t["config_digest"]) for t in tasks], scale, seed)
        path = directory / f"grid-{gid}.json"
        previous: dict[str, dict] = {}
        if path.exists():
            try:
                previous = cls.load(path).tasks
            except (IntegrityError, ValueError, KeyError, OSError) as exc:
                registry = get_registry()
                registry.inc("cache.corrupt")
                registry.inc("cache.manifest.corrupt")
                quarantine(path, directory.parent / "quarantine")
                del exc
        now = round(time.time(), 3)
        records: dict[str, dict] = {}
        for index, task in enumerate(tasks):
            key = task["key"]
            old = previous.get(key)
            records[key] = {
                "index": index,
                "app": task["app"],
                "config_name": task["config_name"],
                "config_digest": task["config_digest"],
                "config": task["config"],
                "status": old["status"] if old else "pending",
                "attempts": old["attempts"] if old else 0,
                "error": old.get("error") if old else None,
                "updated": now,
            }
        manifest = cls(path, {
            "version": MANIFEST_VERSION, "grid_id": gid, "label": label,
            "scale": float(scale), "seed": int(seed), "created": now,
            "completed": None, "tasks": records,
        })
        manifest.save()
        return manifest

    @classmethod
    def load(cls, path: Path | str) -> "GridManifest":
        """Load and digest-verify one manifest file."""
        path = Path(path)
        parsed = json.loads(path.read_text())
        if not isinstance(parsed, dict) or "tasks" not in parsed:
            raise IntegrityError("manifest is not a task object")
        stored = parsed.pop("digest", None)
        actual = payload_digest(canonical_json(parsed))
        if stored != actual:
            raise IntegrityError(
                f"manifest digest mismatch: stored {stored!r}, "
                f"computed {actual!r}")
        return cls(path, parsed)

    @classmethod
    def latest_incomplete(cls, directory: Path | str
                          ) -> "GridManifest | None":
        """The most recently touched manifest with unfinished tasks
        (corrupt manifest files are skipped)."""
        directory = Path(directory)
        if not directory.is_dir():
            return None
        paths = sorted(directory.glob("grid-*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        for path in paths:
            try:
                manifest = cls.load(path)
            except (IntegrityError, ValueError, KeyError, OSError):
                continue
            if not manifest.is_complete:
                return manifest
        return None

    # -- updates ---------------------------------------------------------------

    def save(self) -> None:
        """Atomically rewrite the manifest with a fresh content digest."""
        out = dict(self._data)
        out["digest"] = payload_digest(canonical_json(self._data))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / (self.path.name + f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(out, sort_keys=True))
        os.replace(tmp, self.path)

    def mark(self, key: str, status: str, error: str | None = None,
             save: bool = True) -> None:
        """Set one task's status (unknown keys are ignored)."""
        task = self.tasks.get(key)
        if task is None:
            return
        task["status"] = status
        task["error"] = error
        task["updated"] = round(time.time(), 3)
        if save:
            self.save()

    def mark_many(self, keys, status: str) -> None:
        """Batch :meth:`mark` with a single atomic rewrite."""
        for key in keys:
            self.mark(key, status, save=False)
        self.save()

    def record_attempts(self, keys) -> None:
        """Bump the attempt counter of every ``keys`` task (one rewrite)."""
        now = round(time.time(), 3)
        for key in keys:
            task = self.tasks.get(key)
            if task is not None:
                task["attempts"] += 1
                task["updated"] = now
        self.save()

    def reset_failed(self) -> int:
        """Re-arm failed tasks as pending (fresh attempt budget) for a
        resume; returns how many were reset."""
        reset = 0
        for task in self.tasks.values():
            if task["status"] == "failed":
                task["status"] = "pending"
                task["attempts"] = 0
                task["error"] = None
                reset += 1
        if reset:
            self.save()
        return reset

    def finish(self) -> None:
        """Stamp the completion time once every task is done."""
        if self.is_complete and self._data.get("completed") is None:
            self._data["completed"] = round(time.time(), 3)
            self.save()
