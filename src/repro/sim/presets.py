"""Named machine configurations used by the paper's figures.

Each function returns a :class:`~repro.sim.config.SimConfig`. The names match
the legend strings used in the paper so the benchmark harnesses read like the
figures themselves:

* Figure 9 — ``baseline``, ``nl``, ``nl_s``, ``runahead``, ``runahead_nl``,
  ``esp``, ``esp_nl``.
* Figure 10 — ``naive_esp``, ``naive_esp_nl``, ``esp_i_nl``, ``esp_ib_nl``,
  ``esp_ibd_nl`` (the last equals ``esp_nl``).
* Figure 11a — ``nl_i``, ``esp_i``, ``esp_i_nl_i``, ``ideal_esp_i_nl_i``.
* Figure 11b — ``nl_d``, ``runahead_d``, ``runahead_d_nl_d``, ``esp_d``,
  ``esp_d_nl_d``, ``ideal_esp_d_nl_d``.
* Figure 12 — ``bp_*`` design points.
* Figure 3 — ``perfect_*``.
"""

from __future__ import annotations

from repro.sim.config import (
    EspBpMode,
    EspConfig,
    PerfectConfig,
    PrefetchConfig,
    RunaheadConfig,
    SimConfig,
)

# ---------------------------------------------------------------------------
# Building blocks

_NL_BOTH = PrefetchConfig(next_line_i=True, next_line_d=True)
_NL_I = PrefetchConfig(next_line_i=True)
_NL_D = PrefetchConfig(next_line_d=True)
_NL_S = PrefetchConfig(next_line_i=True, next_line_d=True, stride=True)
_NO_PF = PrefetchConfig()


def _esp(**changes) -> EspConfig:
    return EspConfig(enabled=True, **changes)


# ---------------------------------------------------------------------------
# Figure 9: ESP vs next-line vs runahead

def baseline() -> SimConfig:
    """Baseline core with no prefetching (the normalisation point)."""
    return SimConfig(name="baseline", prefetch=_NO_PF)


def nl() -> SimConfig:
    """Next-line instruction + data (DCU) prefetching."""
    return SimConfig(name="NL", prefetch=_NL_BOTH)


def nl_s() -> SimConfig:
    """Next-line plus 256-entry stride data prefetching (the paper's
    reference baseline: "Intel's data prefetchers (next-line and stride")."""
    return SimConfig(name="NL + S", prefetch=_NL_S)


def runahead() -> SimConfig:
    """Runahead execution without any baseline prefetcher."""
    return SimConfig(name="Runahead", prefetch=_NO_PF,
                     runahead=RunaheadConfig(enabled=True))


def runahead_nl() -> SimConfig:
    """Runahead combined with next-line prefetching."""
    return SimConfig(name="Runahead + NL", prefetch=_NL_BOTH,
                     runahead=RunaheadConfig(enabled=True))


def esp() -> SimConfig:
    """Full ESP (I, D and B lists) without any baseline prefetcher."""
    return SimConfig(name="ESP", prefetch=_NO_PF, esp=_esp())


def esp_nl() -> SimConfig:
    """Full ESP combined with next-line prefetching (the headline design)."""
    return SimConfig(name="ESP + NL", prefetch=_NL_BOTH, esp=_esp())


# ---------------------------------------------------------------------------
# Figure 10: sources of performance

def naive_esp() -> SimConfig:
    """Naive ESP: pre-execution fetches into L1/L2, no cachelets or lists."""
    return SimConfig(name="Naive ESP", prefetch=_NO_PF,
                     esp=_esp(naive=True, bp_mode=EspBpMode.NAIVE))


def naive_esp_nl() -> SimConfig:
    """Naive ESP combined with next-line prefetching."""
    return SimConfig(name="Naive ESP + NL", prefetch=_NL_BOTH,
                     esp=_esp(naive=True, bp_mode=EspBpMode.NAIVE))


def esp_i_nl() -> SimConfig:
    """ESP consuming only the I-list (instruction prefetching)."""
    return SimConfig(name="ESP-I + NL", prefetch=_NL_BOTH,
                     esp=_esp(use_d_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def esp_ib_nl() -> SimConfig:
    """ESP consuming the I-list and B-lists."""
    return SimConfig(name="ESP-I,B + NL", prefetch=_NL_BOTH,
                     esp=_esp(use_d_list=False))


def esp_ibd_nl() -> SimConfig:
    """ESP consuming all three lists; identical hardware to ``esp_nl``."""
    cfg = esp_nl()
    return cfg.replace(name="ESP-I,B,D + NL")


# ---------------------------------------------------------------------------
# Figure 11a: instruction-side study (I-prefetchers only)

def nl_i() -> SimConfig:
    """Next-line instruction prefetching only."""
    return SimConfig(name="NL-I", prefetch=_NL_I)


def esp_i() -> SimConfig:
    """ESP consuming only the I-list, no baseline prefetcher."""
    return SimConfig(name="ESP-I", prefetch=_NO_PF,
                     esp=_esp(use_d_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def esp_i_nl_i() -> SimConfig:
    """ESP I-list plus next-line instruction prefetching."""
    return SimConfig(name="ESP-I + NL-I", prefetch=_NL_I,
                     esp=_esp(use_d_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def ideal_esp_i_nl_i() -> SimConfig:
    """Infinite I-cachelet and I-list with perfectly timely prefetches."""
    return SimConfig(name="ideal ESP-I + NL-I", prefetch=_NL_I,
                     esp=_esp(ideal=True, use_d_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


# ---------------------------------------------------------------------------
# Figure 11b: data-side study (D-prefetchers only)

def nl_d() -> SimConfig:
    """Next-line (DCU) data prefetching only."""
    return SimConfig(name="NL-D", prefetch=_NL_D)


def runahead_d() -> SimConfig:
    """Runahead that only warms the data cache (no I-side, no BP updates)."""
    return SimConfig(name="Runahead-D", prefetch=_NO_PF,
                     runahead=RunaheadConfig(enabled=True, d_only=True))


def runahead_d_nl_d() -> SimConfig:
    """Runahead-D combined with next-line data prefetch."""
    return SimConfig(name="Runahead-D + NL-D", prefetch=_NL_D,
                     runahead=RunaheadConfig(enabled=True, d_only=True))


def esp_d() -> SimConfig:
    """ESP consuming only the D-list, no baseline prefetcher."""
    return SimConfig(name="ESP-D", prefetch=_NO_PF,
                     esp=_esp(use_i_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def esp_d_nl_d() -> SimConfig:
    """ESP D-list plus next-line data prefetching."""
    return SimConfig(name="ESP-D + NL-D", prefetch=_NL_D,
                     esp=_esp(use_i_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def ideal_esp_d_nl_d() -> SimConfig:
    """Unbounded-D-cachelet/list ESP with timely prefetches."""
    return SimConfig(name="ideal ESP-D + NL-D", prefetch=_NL_D,
                     esp=_esp(ideal=True, use_i_list=False, use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


# ---------------------------------------------------------------------------
# Figure 12: branch-predictor design space (all on ESP + NL hardware)

def bp_base() -> SimConfig:
    """Figure 12's baseline: the NL machine, relabelled."""
    return nl().replace(name="bp base")


def bp_no_extra_hw() -> SimConfig:
    """Pre-execution naively shares PIR and tables ("no extra H/W")."""
    return SimConfig(name="no extra H/W", prefetch=_NL_BOTH,
                     esp=_esp(use_b_list=False, bp_mode=EspBpMode.NAIVE))


def bp_separate_context() -> SimConfig:
    """Replicated PIR, shared tables, no B-list."""
    return SimConfig(name="separate context", prefetch=_NL_BOTH,
                     esp=_esp(use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_CONTEXT))


def bp_separate_tables() -> SimConfig:
    """Fully replicated predictor per ESP mode."""
    return SimConfig(name="separate context and tables", prefetch=_NL_BOTH,
                     esp=_esp(use_b_list=False,
                              bp_mode=EspBpMode.SEPARATE_TABLES))


def bp_esp() -> SimConfig:
    """The ESP design: separate context + B-list training."""
    return esp_nl().replace(name="separate context + B-list (ESP)")


# ---------------------------------------------------------------------------
# Section 7: related-work instruction prefetchers

def efetch() -> SimConfig:
    """EFetch call-context instruction prefetcher plus the NL-D baseline
    (the paper's EFetch comparison runs against no-prefetch; combining with
    the data-side baseline mirrors how ESP is reported)."""
    return SimConfig(name="EFetch",
                     prefetch=PrefetchConfig(efetch=True, next_line_d=True))


def pif() -> SimConfig:
    """PIF temporal-stream instruction prefetcher plus the NL-D baseline."""
    return SimConfig(name="PIF",
                     prefetch=PrefetchConfig(pif=True, next_line_d=True))


# ---------------------------------------------------------------------------
# Figure 3: performance potential

def perfect_l1d() -> SimConfig:
    """All data accesses hit L1-D (Figure 3)."""
    return SimConfig(name="perfect L1D-cache", prefetch=_NL_BOTH,
                     perfect=PerfectConfig(l1d=True))


def perfect_branch() -> SimConfig:
    """All branches predicted correctly (Figure 3)."""
    return SimConfig(name="perfect Branch Predictor", prefetch=_NL_BOTH,
                     perfect=PerfectConfig(branch=True))


def perfect_l1i() -> SimConfig:
    """All instruction fetches hit L1-I (Figure 3)."""
    return SimConfig(name="perfect L1I-cache", prefetch=_NL_BOTH,
                     perfect=PerfectConfig(l1i=True))


def perfect_all() -> SimConfig:
    """Perfect caches and branch prediction (Figure 3)."""
    return SimConfig(name="perfect All", prefetch=_NL_BOTH,
                     perfect=PerfectConfig(l1i=True, l1d=True, branch=True))


def potential_baseline() -> SimConfig:
    """The machine Figure 3 normalises against (baseline prefetchers on)."""
    return nl().replace(name="potential baseline")


# ---------------------------------------------------------------------------

FIGURE9 = ("baseline", "nl", "nl_s", "runahead", "runahead_nl", "esp",
           "esp_nl")
FIGURE10 = ("naive_esp", "naive_esp_nl", "esp_i_nl", "esp_ib_nl",
            "esp_ibd_nl")
FIGURE11A = ("baseline", "nl_i", "esp_i", "esp_i_nl_i", "ideal_esp_i_nl_i")
FIGURE11B = ("baseline", "nl_d", "runahead_d", "runahead_d_nl_d", "esp_d",
             "esp_d_nl_d", "ideal_esp_d_nl_d")
FIGURE12 = ("bp_base", "bp_no_extra_hw", "bp_separate_context",
            "bp_separate_tables", "bp_esp")
FIGURE3 = ("potential_baseline", "perfect_l1d", "perfect_branch",
           "perfect_l1i", "perfect_all")


def preset_names() -> list[str]:
    """Names of every preset constructor defined in this module."""
    import types

    names = []
    for name, value in globals().items():
        if name.startswith("_") or name in ("by_name", "preset_names"):
            continue
        if isinstance(value, types.FunctionType) and \
                value.__module__ == __name__:
            names.append(name)
    return names


def by_name(name: str) -> SimConfig:
    """Look up a preset constructor by its function name."""
    if name not in preset_names():
        raise KeyError(f"unknown preset {name!r}")
    return globals()[name]()
