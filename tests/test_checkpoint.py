"""Mid-simulation checkpointing: determinism, the generational store,
and the watchdog/resource guards.

The load-bearing invariant: a run killed at *any* event boundary and
resumed from its checkpoint produces a bit-identical
:class:`~repro.sim.results.SimResult` to the uninterrupted run — per
machine configuration (baseline / ESP / runahead) and per hot-loop
implementation (packed and object paths). The checkpoint payload must
also survive a JSON round trip, since that is exactly what the on-disk
envelope does to it.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.integrity import unwrap_result, wrap_result
from repro.resilience.watchdog import (Heartbeat, MemoryPressure,
                                       WorkerWatchdog, check_memory,
                                       rss_bytes)
from repro.sim import presets
from repro.sim.config import SimConfig
from repro.sim.simulator import CHECKPOINT_VERSION, Simulator

CONFIGS = [
    ("baseline", SimConfig),
    ("esp_nl", presets.esp_nl),
    ("runahead", presets.runahead),
]


def _collect_checkpoints(app, config, use_packed, every=3):
    """Run once with a checkpoint sink; return (clean result dict,
    captured checkpoint payloads)."""
    states = []
    sim = Simulator(app, config, use_packed=use_packed)
    sim.checkpoint_every = every
    sim.checkpoint_sink = states.append
    clean = sim.run().to_dict()
    return clean, states


class TestCheckpointDeterminism:
    @pytest.mark.parametrize("use_packed", [None, False],
                             ids=["packed", "object"])
    @pytest.mark.parametrize("name,make_config", CONFIGS)
    def test_resume_is_bit_identical(self, tiny_app, name, make_config,
                                     use_packed):
        """Restore from every captured generation; each resumed run must
        equal the uninterrupted run bit for bit."""
        config = make_config()
        clean, states = _collect_checkpoints(tiny_app, config, use_packed)
        assert len(states) >= 3, "cadence produced too few checkpoints"
        for state in states:
            # the on-disk envelope serialises the payload; prove the
            # payload survives that round trip exactly
            state = json.loads(json.dumps(state))
            fresh = Simulator(tiny_app, make_config(),
                              use_packed=use_packed)
            fresh.restore(state)
            assert fresh.run().to_dict() == clean, \
                f"resume from event {state['loop']['position']} diverged"

    def test_checkpointing_does_not_perturb_the_run(self, tiny_app):
        """A run with an active sink equals a run without one."""
        plain = Simulator(tiny_app, SimConfig()).run().to_dict()
        with_sink, states = _collect_checkpoints(tiny_app, SimConfig(),
                                                 None, every=1)
        assert with_sink == plain
        # every interior boundary checkpointed, none at the final event
        assert [s["loop"]["position"] for s in states] \
            == list(range(1, len(states) + 1))

    def test_real_app_spot_check(self):
        """One real benchmark app through the ESP preset at small scale."""
        from repro.workloads import EventTrace, get_app

        app = get_app("bing")
        trace = EventTrace(app, scale=0.1, seed=0)
        clean, states = _collect_checkpoints(trace, presets.esp_nl(),
                                             None, every=1)
        assert states
        for state in states:
            fresh = Simulator(EventTrace(app, scale=0.1, seed=0),
                              presets.esp_nl())
            fresh.restore(json.loads(json.dumps(state)))
            assert fresh.run().to_dict() == clean


class TestRestoreRejection:
    def _state(self, tiny_app):
        _clean, states = _collect_checkpoints(tiny_app, SimConfig(), None)
        return states[0]

    def test_bad_version_rejected(self, tiny_app):
        state = self._state(tiny_app)
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            Simulator(tiny_app, SimConfig()).restore(state)

    def test_config_mismatch_rejected(self, tiny_app):
        state = self._state(tiny_app)
        with pytest.raises(ValueError, match="configuration"):
            Simulator(tiny_app, presets.nl()).restore(state)

    def test_esp_mismatch_rejected(self, tiny_app):
        _clean, states = _collect_checkpoints(tiny_app, presets.esp_nl(),
                                              None)
        with pytest.raises(ValueError):
            Simulator(tiny_app, SimConfig()).restore(states[0])

    def test_trace_length_mismatch_rejected(self, tiny_app):
        state = self._state(tiny_app)
        state["n_events"] += 1
        with pytest.raises(ValueError, match="event"):
            Simulator(tiny_app, SimConfig()).restore(state)

    def test_rejection_leaves_simulator_pristine(self, tiny_app):
        """Header validation precedes mutation: a rejected restore must
        not change what the simulator then computes."""
        clean = Simulator(tiny_app, SimConfig()).run().to_dict()
        state = self._state(tiny_app)
        state["version"] = 99
        sim = Simulator(tiny_app, SimConfig())
        with pytest.raises(ValueError):
            sim.restore(state)
        assert sim.run().to_dict() == clean

    def test_checkpoint_outside_boundary_is_an_error(self, tiny_app):
        with pytest.raises(RuntimeError):
            Simulator(tiny_app, SimConfig()).checkpoint()


class TestCheckpointStore:
    def _fake_state(self, position):
        return {"loop": {"position": position}, "payload": position * 7}

    def test_save_keeps_newest_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, "task")
        for position in (3, 6, 9, 12):
            assert store.save(self._fake_state(position)) is not None
        names = sorted(p.name for p in (tmp_path / "checkpoints")
                       .glob("task.e*.ckpt"))
        assert names == ["task.e00000009.ckpt", "task.e00000012.ckpt"]
        assert store.written == 4

    def test_load_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, "task")
        store.save(self._fake_state(3))
        store.save(self._fake_state(6))
        applied = []
        assert store.load_latest(applied.append) == 6
        assert applied[0]["payload"] == 42
        assert store.fallbacks == 0

    def test_corrupt_newest_falls_back_and_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path, "task")
        store.save(self._fake_state(3))
        newest = store.save(self._fake_state(6))
        newest.write_text(newest.read_text()[:-20])  # tear the envelope
        applied = []
        assert store.load_latest(applied.append) == 3
        assert store.fallbacks == 1
        assert applied[0]["loop"]["position"] == 3
        assert list((tmp_path / "quarantine").glob("*.quarantined"))
        assert not newest.exists()

    def test_rejected_apply_falls_back(self, tmp_path):
        """A generation whose payload the simulator refuses (ValueError)
        is quarantined just like a torn one."""
        store = CheckpointStore(tmp_path, "task")
        store.save(self._fake_state(3))
        store.save(self._fake_state(6))

        def apply(state):
            if state["loop"]["position"] == 6:
                raise ValueError("wrong configuration")

        assert store.load_latest(apply) == 3
        assert store.fallbacks == 1

    def test_no_surviving_generation_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "task")
        path = store.save(self._fake_state(3))
        path.write_text("garbage")
        assert store.load_latest(lambda s: None) is None
        assert store.fallbacks == 1

    def test_clear_removes_consumed_generations(self, tmp_path):
        store = CheckpointStore(tmp_path, "task")
        store.save(self._fake_state(3))
        store.save(self._fake_state(6))
        assert store.clear() == 2
        assert store.load_latest(lambda s: None) is None
        assert store.fallbacks == 0  # nothing left to even try

    def test_keys_do_not_cross_contaminate(self, tmp_path):
        a = CheckpointStore(tmp_path, "task-a")
        b = CheckpointStore(tmp_path, "task-b")
        a.save(self._fake_state(3))
        b.save(self._fake_state(9))
        assert a.load_latest(lambda s: None) == 3
        assert b.load_latest(lambda s: None) == 9

    def test_envelope_roundtrip_of_a_real_checkpoint(self, tiny_app,
                                                     tmp_path):
        """End to end: a genuine simulator payload through the store's
        wrap/unwrap envelope restores bit-identically."""
        clean, states = _collect_checkpoints(tiny_app, SimConfig(), None)
        payload, verified = unwrap_result(wrap_result(states[-1]))
        assert verified
        fresh = Simulator(tiny_app, SimConfig())
        fresh.restore(payload)
        assert fresh.run().to_dict() == clean


class TestHeartbeat:
    def test_lifecycle(self, tmp_path):
        hb = Heartbeat(tmp_path, key="k1", app="bing", interval=0.0)
        hb.start()
        assert hb.path.exists()
        info = json.loads(hb.path.read_text())
        assert info["pid"] == os.getpid()
        assert info["parent"] == os.getppid()
        assert info["key"] == "k1" and info["app"] == "bing"
        old = time.time() - 100
        os.utime(hb.path, (old, old))
        hb.beat()
        assert hb.path.stat().st_mtime > old + 50
        hb.stop()
        assert not hb.path.exists()

    def test_beat_is_throttled(self, tmp_path):
        hb = Heartbeat(tmp_path, key="k", interval=3600.0)
        hb.start()
        old = time.time() - 100
        os.utime(hb.path, (old, old))
        hb.beat()  # inside the interval: must not touch the file
        assert hb.path.stat().st_mtime == pytest.approx(old)
        hb.stop()


class TestWorkerWatchdog:
    def _beacon(self, tmp_path, pid, parent, age):
        """A legacy beacon: no monotonic stamp in the body, so liveness
        falls back to the file mtime (aged ``age`` seconds)."""
        path = tmp_path / "heartbeats" / f"hb-{pid}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"pid": pid, "parent": parent, "key": "k", "app": "bing"}))
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def _mono_beacon(self, tmp_path, pid, parent, mono_age,
                     wall_age=0.0):
        """A current-format beacon whose body's monotonic stamp is
        ``mono_age`` seconds old while the file *mtime* is ``wall_age``
        seconds old — the two disagree exactly when the wall clock has
        stepped (NTP) between beats."""
        path = tmp_path / "heartbeats" / f"hb-{pid}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"pid": pid, "parent": parent, "key": "k", "app": "bing",
             "beat_mono": time.monotonic() - mono_age}))
        stamp = time.time() - wall_age
        os.utime(path, (stamp, stamp))
        return path

    def test_kills_own_stale_worker(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            path = self._beacon(tmp_path, proc.pid, os.getpid(), age=10.0)
            stalls = []
            dog = WorkerWatchdog(tmp_path, timeout=2.0,
                                 on_stall=stalls.append)
            assert dog.sweep() == 1
            assert dog.kills == 1
            assert not path.exists()
            assert stalls[0]["pid"] == proc.pid
            assert stalls[0]["key"] == "k"
            assert stalls[0]["age"] > 2.0
            assert proc.wait(timeout=10) != 0
        finally:
            proc.kill()

    def test_fresh_beacon_left_alone(self, tmp_path):
        path = self._beacon(tmp_path, os.getpid(), os.getpid(), age=0.0)
        dog = WorkerWatchdog(tmp_path, timeout=30.0)
        assert dog.sweep() == 0
        assert path.exists()

    def test_dead_pid_swept_without_counting_a_kill(self, tmp_path):
        # spawn-and-reap guarantees a pid that no longer exists
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        path = self._beacon(tmp_path, proc.pid, os.getpid(), age=10.0)
        dog = WorkerWatchdog(tmp_path, timeout=2.0)
        assert dog.sweep() == 0
        assert dog.kills == 0
        assert not path.exists()

    def test_foreign_beacon_untouched_until_ancient(self, tmp_path):
        foreign = self._beacon(tmp_path, 1, os.getpid() + 12345, age=10.0)
        dog = WorkerWatchdog(tmp_path, timeout=2.0)
        assert dog.sweep() == 0
        assert foreign.exists()  # someone else's campaign
        stamp = time.time() - 3600
        os.utime(foreign, (stamp, stamp))
        assert dog.sweep() == 0
        assert not foreign.exists()  # ancient orphan: swept, never killed

    def test_wall_clock_jump_spares_live_worker(self, tmp_path):
        """An NTP step makes the beacon's mtime look an hour stale while
        the worker is beating normally (fresh monotonic stamp): the
        watchdog judges monotonic-against-monotonic and must not kill."""
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            path = self._mono_beacon(tmp_path, proc.pid, os.getpid(),
                                     mono_age=0.0, wall_age=3600.0)
            dog = WorkerWatchdog(tmp_path, timeout=2.0)
            assert dog.sweep() == 0
            assert dog.kills == 0
            assert path.exists()  # the healthy worker keeps its beacon
            assert proc.poll() is None  # and its life
        finally:
            proc.kill()

    def test_stale_monotonic_stamp_kills_despite_fresh_mtime(
            self, tmp_path):
        """The converse jump: a wall clock stepped *backwards* keeps the
        mtime looking fresh forever, but the body's monotonic stamp says
        the worker stopped beating long ago — it must still be killed."""
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            path = self._mono_beacon(tmp_path, proc.pid, os.getpid(),
                                     mono_age=100.0, wall_age=0.0)
            stalls = []
            dog = WorkerWatchdog(tmp_path, timeout=2.0,
                                 on_stall=stalls.append)
            assert dog.sweep() == 1
            assert not path.exists()
            assert stalls[0]["pid"] == proc.pid
            assert stalls[0]["age"] > 2.0
            assert proc.wait(timeout=10) != 0
        finally:
            proc.kill()

    def test_corrupt_foreign_body_swept_only_when_ancient(self, tmp_path):
        """A beacon body that doesn't parse can't be one of ours (our
        writes are atomic): it is treated as foreign — untouched while
        recent, swept without a kill once ancient on the wall scale."""
        path = tmp_path / "heartbeats" / "hb-99999.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 99999, "parent"')  # torn write
        dog = WorkerWatchdog(tmp_path, timeout=2.0)
        assert dog.sweep() == 0
        assert path.exists()
        stamp = time.time() - 3600
        os.utime(path, (stamp, stamp))
        assert dog.sweep() == 0
        assert dog.kills == 0
        assert not path.exists()

    def test_thread_start_stop(self, tmp_path):
        dog = WorkerWatchdog(tmp_path, timeout=0.2)
        dog.start()
        time.sleep(0.1)
        dog.stop()
        assert dog._thread is None


class TestMemoryGuard:
    def test_zero_limit_is_a_noop(self):
        check_memory(0)

    def test_tiny_limit_raises_memory_pressure(self):
        if rss_bytes() is None:
            pytest.skip("no resource module on this platform")
        with pytest.raises(MemoryPressure):
            check_memory(1)

    def test_memory_pressure_is_a_memory_error(self):
        assert issubclass(MemoryPressure, MemoryError)
