"""Simulation statistics.

A :class:`SimResult` carries everything the paper's figures report:
cycles/IPC (performance improvements are speedups of cycle counts), L1-I
MPKI (Figure 11a), L1-D miss rate (Figure 11b), branch misprediction rate
(Figure 12), extra pre-executed instructions and the energy breakdown
(Figure 14), plus ESP-internal counters used by the analyses in Section 6.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields


@dataclass
class EspStats:
    """ESP/runahead side-path counters."""

    #: times the core entered any speculative mode
    mode_entries: int = 0
    #: instructions pre-executed, per mode (index 0 = ESP-1 / runahead)
    pre_instructions: list[int] = field(default_factory=list)
    #: events whose pre-execution ran to completion before they started
    pre_complete_events: int = 0
    #: events that had any recorded hints when they started
    hinted_events: int = 0
    #: events whose speculative stream diverged from the true stream
    diverged_events: int = 0
    #: dequeues where the runtime's event-order prediction was wrong
    #: (multi-queue runtimes, Section 4.5); their hints are suppressed
    order_mispredictions: int = 0
    #: list-recording terminations due to a full list
    list_overflows: int = 0
    #: prefetches issued from I/D-lists during normal mode
    list_prefetches_i: int = 0
    list_prefetches_d: int = 0
    #: B-list entries used for just-in-time training
    blist_trained: int = 0
    #: dirty blocks evicted from D-cachelets (lost speculative stores)
    dirty_evictions: int = 0
    #: cachelet demand stats (accesses, misses) per side
    i_cachelet_accesses: int = 0
    i_cachelet_misses: int = 0
    d_cachelet_accesses: int = 0
    d_cachelet_misses: int = 0

    @property
    def total_pre_instructions(self) -> int:
        return sum(self.pre_instructions)


@dataclass
class EventProfile:
    """Per-event timeline sample (collected when the simulator's
    ``collect_event_profile`` flag is set)."""

    event_index: int = 0
    instructions: int = 0
    cycles: float = 0.0
    stall_ifetch: float = 0.0
    stall_data: float = 0.0
    stall_branch: float = 0.0
    #: the event started with recorded ESP hints attached
    hinted: bool = False

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class EnergyBreakdown:
    """Energy in normalised units (see :mod:`repro.energy.model`)."""

    static: float = 0.0
    dynamic_core: float = 0.0
    dynamic_caches: float = 0.0
    dynamic_wrongpath: float = 0.0
    dynamic_esp: float = 0.0

    @property
    def total(self) -> float:
        return (self.static + self.dynamic_core + self.dynamic_caches +
                self.dynamic_wrongpath + self.dynamic_esp)


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    app: str = ""
    config: str = ""
    # core
    instructions: int = 0
    cycles: float = 0.0
    events: int = 0
    # instruction side
    l1i_accesses: int = 0
    l1i_misses: int = 0
    llc_i_misses: int = 0
    # data side
    l1d_accesses: int = 0
    l1d_misses: int = 0
    llc_d_misses: int = 0
    # branches
    branches: int = 0
    branch_mispredicts: int = 0
    # stall accounting (cycles)
    stall_ifetch: float = 0.0
    stall_data: float = 0.0
    stall_branch: float = 0.0
    # prefetching
    prefetches_issued_i: int = 0
    prefetches_useful_i: int = 0
    prefetches_late_i: int = 0
    prefetches_issued_d: int = 0
    prefetches_useful_d: int = 0
    prefetches_late_d: int = 0
    # side paths
    esp: EspStats = field(default_factory=EspStats)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    # fidelity tagging (:mod:`repro.sim.sampling`) — "full" results are
    # exact; "sampled" results carry per-metric relative 95 % error
    # bounds and the detailed/extrapolated event split
    fidelity: str = "full"
    detailed_events: int = 0
    sampled_events: int = 0
    error_bounds: dict = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1i_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l1i_misses / self.instructions

    @property
    def l1d_miss_rate(self) -> float:
        """L1-D miss fraction in [0, 1]."""
        if not self.l1d_accesses:
            return 0.0
        return self.l1d_misses / self.l1d_accesses

    @property
    def branch_misprediction_rate(self) -> float:
        """Mispredictions per executed branch, in [0, 1]."""
        if not self.branches:
            return 0.0
        return self.branch_mispredicts / self.branches

    @property
    def extra_instruction_fraction(self) -> float:
        """Pre-executed instructions as a fraction of retired ones
        (the numbers atop the Figure 14 bars)."""
        if not self.instructions:
            return 0.0
        return self.esp.total_pre_instructions / self.instructions

    def speedup_over(self, baseline: "SimResult") -> float:
        """Performance of this run relative to ``baseline`` (1.0 = equal)."""
        if not self.cycles:
            return 0.0
        return baseline.cycles / self.cycles

    def improvement_over(self, baseline: "SimResult") -> float:
        """Performance improvement percentage over ``baseline``."""
        return (self.speedup_over(baseline) - 1.0) * 100.0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) for the on-disk result cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        data = dict(data)
        esp = EspStats(**data.pop("esp", {}))
        energy = EnergyBreakdown(**data.pop("energy", {}))
        return cls(esp=esp, energy=energy, **data)


def _schema_digest() -> str:
    """Digest of the result record's field layout.

    Baked into on-disk cache keys so entries written by an older code
    version — which would fail or, worse, silently misreport after a field
    rename — self-invalidate instead of being deserialised.
    """
    spec = ";".join(
        f"{cls.__name__}:" + ",".join(f.name for f in fields(cls))
        for cls in (SimResult, EspStats, EnergyBreakdown))
    return hashlib.sha256(spec.encode()).hexdigest()[:8]


#: schema tag for :mod:`repro.sim.experiments` cache keys
RESULT_SCHEMA = _schema_digest()
