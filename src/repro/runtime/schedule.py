"""Execution schedules: actual event order plus the runtime's predictions.

The simulator iterates a schedule position by position. At each position it
needs two things: which event actually runs (``order[i]``), and which events
the runtime *predicted* would run next when the previous event was
dispatched (``predictions[i]``) — the contents of the hardware event queue
during position ``i``'s execution. A prediction miss means the hints ESP
recorded are for the wrong event; the hardware's incorrect-prediction bit
(Section 4.5) suppresses them.

The single-queue case of the main evaluation is the identity schedule:
events run in index order and every prediction is trivially right.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionSchedule:
    """Actual run order plus per-position next-event predictions."""

    #: event indices in the order they actually execute
    order: list[int]
    #: ``predictions[i]``: event indices the runtime predicted would follow
    #: ``order[i]`` (up to the hardware queue depth), made at dispatch time
    predictions: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.predictions:
            self.predictions = [
                self.order[i + 1:i + 3] for i in range(len(self.order))
            ]
        if len(self.predictions) != len(self.order):
            raise ValueError("one prediction list per schedule position")

    def __len__(self) -> int:
        return len(self.order)

    def actual(self, position: int) -> int:
        return self.order[position]

    def predicted_next(self, position: int, depth: int) -> list[int]:
        """What the runtime believed would run after position ``position``
        (truncated/padded to at most ``depth`` entries)."""
        return self.predictions[position][:depth]

    @property
    def misprediction_count(self) -> int:
        """Positions whose immediate next-event prediction was wrong."""
        misses = 0
        for i in range(len(self.order) - 1):
            predicted = self.predictions[i]
            if not predicted or predicted[0] != self.order[i + 1]:
                misses += 1
        return misses

    @property
    def misprediction_rate(self) -> float:
        if len(self.order) <= 1:
            return 0.0
        return self.misprediction_count / (len(self.order) - 1)


def identity_schedule(n_events: int) -> ExecutionSchedule:
    """The single-queue case: in-order execution, perfect prediction."""
    return ExecutionSchedule(order=list(range(n_events)))
