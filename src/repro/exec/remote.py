"""Remote execution backend: TCP coordinator + lease-based work-stealing.

``REPRO_BACKEND=remote`` turns one ``run_many`` batch into a small
distributed campaign. The parent binds a coordinator socket (the
``REPRO_COORD`` address, or an ephemeral localhost port when unset) and
``repro worker`` processes — on this machine or any host that can reach
the coordinator — connect, pull tasks, and stream results back. The
design assumes the network is *unreliable* and degrades instead of
wedging:

* **Length-prefixed JSON protocol.** Every message is a 4-byte big-endian
  length followed by one UTF-8 JSON object; a torn or truncated frame
  reads as a disconnect, never as a garbled message.
* **Time-bounded leases.** A task is handed out under a lease of
  ``REPRO_LEASE_S`` seconds, renewed by worker heartbeats and judged
  monotonic-against-monotonic (the same discipline as the §9 watchdog —
  NTP steps neither expire healthy leases nor spare dead ones, both
  stamps coming from the coordinator's own clock). A lease whose
  heartbeats stop is **stolen**: the task is requeued to a live worker,
  counted (``remote.steals``) and logged (``steal`` records). A worker
  disconnect steals its leases immediately.
* **At-most-once commits.** Results arrive digest-tagged; the first
  verified result for a key is committed through the runner's digest-
  enveloped result cache and every later delivery of the same key is a
  no-op (``remote.dup_results``) — the legitimate outcome of a steal
  whose original worker survived. A *mismatched* digest (a worker
  returning different bytes for the same pure task) is quarantined, not
  committed.
* **Capped full-jitter reconnects.** Workers reconnect with exponential
  backoff and full jitter (:func:`repro.exec.base.jittered_backoff`,
  seeded from the worker token) so a restarted coordinator is not
  thundering-herded by its own fleet. A coordinator's ``shutdown`` at
  batch end sends a parked ``repro worker`` back to this connect loop —
  one long-lived pair can serve every batch a campaign binds on the
  address — while ``--exit-on-disconnect`` workers (the self-hosted
  kind) terminate instead.
* **Graceful degradation.** No workers within ``REPRO_REMOTE_WAIT``
  seconds — at batch start or after losing the whole fleet mid-batch —
  and the remaining tasks fall back to the machine-measured local
  backend (:func:`repro.exec.auto.auto_pick`) instead of failing the
  campaign. A coordinator that cannot even bind degrades the same way.
  Tasks a worker *errored* on are handed to the runner's serial retry
  ladder, which owns the attempt budget, exactly as on every other
  backend.

* **A content-addressed artifact plane.** With ``REPRO_STORE=fetch``
  (or ``repro worker --no-shared-fs``) workers stop assuming the
  coordinator's filesystem: task frames carry artifact *digests*
  instead of relying on a shared ``cache_dir``, and workers resolve
  cache misses over the same socket — ``artifact_stat`` /
  ``artifact_get`` / ``artifact_put`` frames with chunked, per-chunk-CRC
  transfer backed by the digest-sharded
  :class:`~repro.store.ArtifactStore`. A torn transfer reads as a
  retryable miss; an intact transfer whose bytes mismatch their digest
  is quarantined on the receiving side and escalated with a
  ``quarantine_notify`` frame so the coordinator poisons that digest
  fleet-wide instead of re-serving it. A worker that cannot obtain a
  required artifact sends ``release`` — its lease is requeued for
  stealing rather than the batch failing — and ``REPRO_STORE=shared``
  (the default) preserves the shared-filesystem behaviour bit-for-bit.

With no ``REPRO_COORD`` set the backend **self-hosts**: it binds an
ephemeral localhost port and spawns its own ``repro worker``
subprocesses for the batch, so ``REPRO_BACKEND=remote`` works with zero
setup while still exercising the full socket path. The deterministic
fault plan (:mod:`repro.resilience.faults`) injects the network's
failure modes — ``drop_conn``, ``slow_socket``, ``dup_result``,
``stale_lease``, plus the artifact plane's ``corrupt_chunk`` /
``truncated_fetch`` / ``slow_fetch`` — through these same code paths
for the chaos suite.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro.exec.base import (DEADLINE_POLL_S, ExecutionBackend,
                             jittered_backoff)
from repro.obs.metrics import get_registry
from repro.resilience import config_from_dict, config_to_dict, wrap_result
from repro.resilience.faults import get_fault_plan
from repro.resilience.integrity import (IntegrityError, canonical_json,
                                        payload_digest)
from repro.sim.results import SimResult
from repro.store import (MAX_ARTIFACT_BYTES, ArtifactStore,
                         ArtifactUnavailable, chunk_count, chunk_crc,
                         decode_chunk, default_store_mode, encode_chunk,
                         iter_chunks)

_COORD_ENV = "REPRO_COORD"
_LEASE_ENV = "REPRO_LEASE_S"
_WAIT_ENV = "REPRO_REMOTE_WAIT"

#: default lease duration (seconds) — heartbeats renew well inside it
DEFAULT_LEASE_S = 10.0

#: default wait for a first worker (or a fleet rebuild) before degrading
DEFAULT_WAIT_S = 10.0

#: how long an idle worker sleeps between task requests
WORKER_IDLE_POLL_S = 0.2

#: worker reconnect backoff: base delay and jitter ceiling (seconds)
RECONNECT_BASE_S = 0.05
RECONNECT_CAP_S = 2.0

#: a task stolen this many times stops being requeued and is handed to
#: the serial retry ladder instead — steals must converge, not ping-pong
MAX_STEALS_PER_TASK = 5

#: frames above this size are treated as a protocol violation (a result
#: payload is a few KB, an artifact chunk a few hundred; this is
#: corruption/abuse, not data)
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: runlog records one result frame carries back from a shared-nothing
#: worker (~200 bytes each; the tail beyond this is dropped, keeping the
#: frame far under MAX_FRAME_BYTES even for checkpoint-per-event runs)
MAX_FORWARDED_RECORDS = 10_000

#: attempts one worker makes at fetching one artifact before giving up
#: (each retry rides the capped full-jitter backoff)
FETCH_ATTEMPTS = 3

#: environment knobs forwarded inside task frames — and folded into the
#: worker-side runner memo key — so a parked worker serving campaigns
#: with different settings never reuses a stale runner clone
TASK_ENV_KEYS = ("REPRO_KERNEL", "REPRO_FIDELITY")

_HEADER = struct.Struct(">I")


def _env_float(name: str, default: float) -> float:
    """A positive float env knob with the harness's usual degrade-don't-
    crash behaviour (malformed or non-positive values fall back)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def default_lease_s() -> float:
    """Lease duration from ``REPRO_LEASE_S`` (default 10s)."""
    return _env_float(_LEASE_ENV, DEFAULT_LEASE_S)


def default_wait_s() -> float:
    """Worker-wait budget from ``REPRO_REMOTE_WAIT`` (default 10s)."""
    return _env_float(_WAIT_ENV, DEFAULT_WAIT_S)


def parse_addr(spec: str) -> tuple[str, int]:
    """Parse ``host:port`` (bare ``:port`` and ``port`` mean localhost).

    Raises ``ValueError`` on anything that cannot name a TCP endpoint.
    """
    spec = (spec or "").strip()
    if not spec:
        raise ValueError("empty coordinator address")
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    host = host.strip() or "127.0.0.1"
    return host, int(port)


# -- framing -------------------------------------------------------------------

def send_msg(sock: socket.socket, message: dict,
             lock: threading.Lock | None = None) -> None:
    """Send one length-prefixed JSON frame (atomic under ``lock`` so a
    heartbeat thread and the task loop never interleave bytes)."""
    body = json.dumps(message, separators=(",", ":")).encode()
    frame = _HEADER.pack(len(body)) + body
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None  # EOF mid-frame: a disconnect, not a message
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` means the peer is gone (EOF, reset,
    torn frame, or a frame that is not a JSON object).

    A plain EOF or torn frame is churn and stays a silent disconnect;
    an absurd length prefix, undecodable JSON, or a non-object body is
    corruption (or protocol skew) and counts ``remote.protocol_errors``
    so fleet debugging can tell the two apart.
    """
    try:
        header = _recv_exact(sock, _HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            get_registry().inc("remote.protocol_errors")
            return None
        body = _recv_exact(sock, length)
        if body is None:
            return None
    except OSError:
        return None
    try:
        message = json.loads(body)
    except ValueError:
        get_registry().inc("remote.protocol_errors")
        return None
    if not isinstance(message, dict):
        get_registry().inc("remote.protocol_errors")
        return None
    return message


# -- coordinator ---------------------------------------------------------------

class _Lease:
    """One outstanding task grant: who holds it and until when."""

    __slots__ = ("worker", "key", "app", "attempt", "start", "deadline")

    def __init__(self, worker: int, key: str, app: str, attempt: int,
                 now: float, lease_s: float) -> None:
        self.worker = worker
        self.key = key
        self.app = app
        self.attempt = attempt
        self.start = now
        self.deadline = now + lease_s


class _Coordinator:
    """The parent-side server for one batch: queue, leases, commits.

    All state is guarded by one lock; connection handler threads mutate
    it through the message handlers, and the batch thread drives
    :meth:`sweep` / :meth:`finished` / :meth:`should_degrade`.
    """

    def __init__(self, runner, todo, results, progress,
                 lease_s: float, wait_s: float,
                 store_mode: str = "shared",
                 store: ArtifactStore | None = None) -> None:
        self.runner = runner
        self.results = results
        self.progress = progress
        self.lease_s = lease_s
        self.wait_s = wait_s
        self.store_mode = store_mode
        self.store = store
        self.metrics = get_registry()
        #: app -> trace digest (or None), memoized per batch
        self._trace_digests: dict[str, str | None] = {}
        #: task key -> (ckpt digest, position) of the newest pushed
        #: checkpoint, so a stolen task resumes on another worker
        self._ckpt_index: dict[str, tuple[str, int]] = {}
        self._lock = threading.Lock()
        self._tasks = {key: (index, key, app, config)
                       for index, (key, app, config) in enumerate(todo)}
        self._queue: deque[str] = deque(key for key, _, _ in todo)
        self._attempts: dict[str, int] = {}
        self._steals: dict[str, int] = {}
        self._leases: dict[str, _Lease] = {}  # task_id -> lease
        self._committed: dict[str, str] = {}  # key -> payload digest
        self._handed_back: set[str] = set()
        self._workers: dict[int, socket.socket] = {}
        self._next_worker_id = 1
        self._started = time.monotonic()
        self._last_worker = None  # monotonic stamp of last live worker
        self._ever_had_worker = False
        self._closing = False
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self.addr: tuple[str, int] | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind, listen, and start accepting workers; returns the bound
        address (the real port when ``port`` was 0)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
            listener.listen(32)
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self.addr = listener.getsockname()[:2]
        thread = threading.Thread(target=self._accept_loop,
                                  name="repro-coord-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        return self.addr

    def close(self) -> None:
        """Stop accepting, drop every worker connection, join handlers."""
        with self._lock:
            self._closing = True
            workers = list(self._workers.values())
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass  # teardown: the listener may already be gone
        for conn in workers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # teardown: peer may have hung up first
            try:
                conn.close()
            except OSError:
                pass  # teardown: double-close is harmless
        for thread in self._threads:
            thread.join(timeout=2.0)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed: batch over
            with self._lock:
                if self._closing:
                    conn.close()
                    return
            thread = threading.Thread(
                target=self._serve_worker, args=(conn, addr),
                name="repro-coord-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    # -- per-connection handler ------------------------------------------------

    def _serve_worker(self, conn: socket.socket, addr) -> None:
        worker_id = None
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # latency tweak only; some transports lack the option
        try:
            hello = recv_msg(conn)
            if not hello or hello.get("type") != "hello":
                return
            with self._lock:
                if self._closing:
                    return
                worker_id = self._next_worker_id
                self._next_worker_id += 1
                self._workers[worker_id] = conn
                self._last_worker = time.monotonic()
                self._ever_had_worker = True
            self.metrics.inc("remote.workers_joined")
            self.runner._note_worker_join(worker_id, hello, addr)
            send_msg(conn, {"type": "welcome", "worker": worker_id,
                            "lease_s": self.lease_s,
                            "poll_s": WORKER_IDLE_POLL_S})
            while True:
                message = recv_msg(conn)
                if message is None:
                    return
                kind = message.get("type")
                if kind == "request":
                    send_msg(conn, self._grant(worker_id))
                elif kind == "heartbeat":
                    self._renew(worker_id, message.get("task_id"))
                elif kind == "result":
                    committed = self._commit(worker_id, message)
                    send_msg(conn, {"type": "ack",
                                    "committed": committed})
                elif kind == "error":
                    self._task_errored(worker_id, message)
                    send_msg(conn, {"type": "ack", "committed": False})
                elif kind == "artifact_stat":
                    send_msg(conn, self._artifact_stat(message))
                elif kind == "artifact_get":
                    self._artifact_send(conn, message)
                elif kind == "artifact_put":
                    reply = self._artifact_recv(conn, worker_id, message)
                    if reply is None:
                        return  # unrecoverable framing violation
                    send_msg(conn, reply)
                elif kind == "quarantine_notify":
                    self._poison_notified(worker_id, message)
                elif kind == "release":
                    self._release(worker_id, message)
                elif kind == "goodbye":
                    return
                else:
                    # an unknown frame type is corruption or version
                    # skew, not churn: counted, then ignored
                    self.metrics.inc("remote.protocol_errors")
        except OSError:
            pass  # the socket died mid-exchange: treated as a leave
        finally:
            try:
                conn.close()
            except OSError:
                pass  # connection already torn down by the peer
            if worker_id is not None:
                self._worker_left(worker_id)

    # -- message handlers (state under the lock) -------------------------------

    def _grant(self, worker_id: int) -> dict:
        """The reply to one task request: a leased task, ``idle`` while
        work is outstanding elsewhere, or ``shutdown`` once the batch is
        settled."""
        runner = self.runner
        granted = None
        with self._lock:
            while self._queue:
                key = self._queue.popleft()
                if key in self._committed or key in self._handed_back:
                    continue  # settled while it sat requeued
                index, _, app, config = self._tasks[key]
                attempt = self._attempts.get(key, 0) + 1
                self._attempts[key] = attempt
                task_id = f"{key}#a{attempt}"
                self._leases[task_id] = _Lease(
                    worker_id, key, app, attempt, time.monotonic(),
                    self.lease_s)
                granted = (task_id, key, app, config, attempt, index)
                ckpt = self._ckpt_index.get(key)
                break
            else:
                done = self._finished_locked()
        if granted is None:
            return {"type": "shutdown"} if done \
                else {"type": "idle", "poll_s": WORKER_IDLE_POLL_S}
        # frame assembly (possibly file IO for the trace-digest import)
        # happens outside the lock so a slow disk never stalls commits
        task_id, key, app, config, attempt, index = granted
        self.metrics.inc("remote.leases_granted")
        log_dir = str(runner._runlog.log_dir) \
            if runner._runlog.enabled else None
        message = {
            "type": "task", "task_id": task_id, "key": key,
            "app": app, "config": config_to_dict(config),
            "attempt": attempt, "index": index,
            "scale": runner.scale, "seed": runner.seed,
            "cache_dir": str(runner.cache_dir),
            "use_disk_cache": runner.use_disk_cache,
            "log_dir": log_dir,
            "checkpoint_events": runner.checkpoint_events,
            "lease_s": self.lease_s,
            "store": self.store_mode,
            # explicit, not env-derived: the worker recomputes cache keys
            # from this frame, and sampled/full results must never collide
            "fidelity": runner.fidelity,
        }
        env = {name: os.environ[name] for name in TASK_ENV_KEYS
               if os.environ.get(name)}
        if env:
            message["env"] = env
        if self.store_mode == "fetch":
            artifacts = {}
            digest = self._trace_digest(app)
            if digest is not None:
                artifacts["trace"] = {
                    "digest": digest,
                    "name": runner._trace_path(app).name}
            message["artifacts"] = artifacts
            if ckpt is not None:
                message["checkpoint"] = {"digest": ckpt[0],
                                         "position": ckpt[1]}
        return message

    def _renew(self, worker_id: int, task_id) -> None:
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is not None and lease.worker == worker_id:
                lease.deadline = time.monotonic() + self.lease_s

    def _commit(self, worker_id: int, message: dict) -> bool:
        """At-most-once result commit, verified by digest.

        The first verified payload for a key wins; later deliveries —
        steal survivors, injected duplicates — are no-ops. A payload
        whose digest does not match its own body, or that disagrees with
        an already-committed digest for the key, is quarantined (written
        aside for inspection) and never committed.
        """
        key = message.get("key", "")
        task_id = message.get("task_id")
        payload = message.get("payload")
        claimed = message.get("digest", "")
        if not isinstance(payload, dict) or key not in self._tasks:
            return False
        actual = payload_digest(canonical_json(payload))
        with self._lock:
            # the result settles every outstanding lease on this key —
            # including one held by a different worker after a steal
            for tid in [tid for tid, lease in self._leases.items()
                        if lease.key == key]:
                if tid == task_id or key in self._committed \
                        or actual == claimed:
                    self._leases.pop(tid, None)
            committed = self._committed.get(key)
        app = self._tasks[key][2]
        if actual != claimed:
            self._quarantine_payload(key, payload,
                                     f"frame digest {claimed!r} != "
                                     f"computed {actual!r}")
            return False
        if committed is not None:
            if committed != actual:
                self._quarantine_payload(
                    key, payload,
                    f"duplicate disagrees with committed digest "
                    f"{committed!r}")
                return False
            self.metrics.inc("remote.dup_results")
            return False
        try:
            result = SimResult.from_dict(payload)
        except (TypeError, ValueError, KeyError):
            self._quarantine_payload(key, payload, "undeserialisable")
            return False
        runner = self.runner
        with self._lock:
            if key in self._committed:  # raced with a twin delivery
                self.metrics.inc("remote.dup_results")
                return False
            self._committed[key] = actual
            runner._memory[key] = result
            self.results[key] = result
        runner._store(key, result)
        self.metrics.inc("remote.commits")
        self._absorb_runlog(message.get("runlog"))
        self.progress.advance(note=app)
        return True

    def _absorb_runlog(self, records) -> None:
        """Append runlog records a shared-nothing worker forwarded with
        its result (its private log dir is unreachable, so observability
        rides the result frame). Only the first commit reaches here, so
        duplicate deliveries cannot double-log."""
        runner = self.runner
        if not isinstance(records, list) or not runner._runlog.enabled:
            return
        for record in records[:MAX_FORWARDED_RECORDS]:
            if isinstance(record, dict):
                runner._runlog.write(record)

    def _quarantine_payload(self, key: str, payload: dict,
                            reason: str) -> None:
        """Write a rejected remote payload into the quarantine directory
        (never silently dropped) and account for it."""
        self.metrics.inc("remote.digest_mismatch")
        runner = self.runner
        dest_name = None
        try:
            qdir = Path(runner.quarantine_dir)
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / (f"remote-{key}.{os.getpid()}-"
                           f"{time.monotonic_ns()}.quarantined")
            dest.write_text(json.dumps(
                {"reason": reason, "payload": payload}, sort_keys=True))
            dest_name = dest.name
        except OSError as exc:
            # the forensic copy could not land (disk full, permissions):
            # the payload is still rejected, but losing the evidence
            # silently would hide a sick quarantine volume — account for
            # it so operators see the drop
            self.metrics.inc("remote.quarantine_write_failed")
            write_error = f"{type(exc).__name__}: {exc}"
        else:
            write_error = None
        if runner._runlog.enabled:
            record = {
                "kind": "corrupt", "ts": round(time.time(), 3),
                "artifact": "remote-result", "path": f"remote-{key}",
                "quarantined": dest_name, "key": key,
                "app": self._tasks[key][2], "pid": os.getpid()}
            if write_error is not None:
                record["quarantine_write_failed"] = write_error
            runner._runlog.write(record)

    # -- artifact plane (fetch mode) -------------------------------------------

    def _trace_digest(self, app: str) -> str | None:
        """Digest of the app's recorded trace, importing the trace file
        into the store shard on first use (memoized per batch). None
        when the trace is unavailable — the worker regenerates locally,
        which is slower but still bit-identical."""
        if app in self._trace_digests:
            return self._trace_digests[app]
        digest = None
        if self.store is not None and self.runner.use_disk_cache:
            path = self.runner._trace_path(app)
            if path.exists():
                digest = self.store.import_file(path, "trace")
        self._trace_digests[app] = digest
        return digest

    def _artifact_stat(self, message: dict) -> dict:
        digest = str(message.get("digest") or "")
        kind = str(message.get("kind") or "")
        if not digest or kind not in ArtifactStore.KINDS \
                or self.store is None:
            self.metrics.inc("remote.protocol_errors")
            return {"type": "artifact_info", "digest": digest,
                    "exists": False, "size": 0, "poisoned": False}
        info = self.store.stat(digest, kind)
        return {"type": "artifact_info", "digest": digest, **info}

    def _artifact_send(self, conn: socket.socket, message: dict) -> None:
        """Serve one ``artifact_get``: a ``artifact_data`` head frame
        followed by CRC-stamped chunks, or an ``artifact_miss``. The
        coordinator's own copy is re-verified on read; one that rotted
        is poisoned here and reported as a miss, never served."""
        digest = str(message.get("digest") or "")
        kind = str(message.get("kind") or "")

        def miss(reason: str) -> None:
            send_msg(conn, {"type": "artifact_miss", "digest": digest,
                            "reason": reason})

        if not digest or kind not in ArtifactStore.KINDS:
            self.metrics.inc("remote.protocol_errors")
            miss("bad-request")
            return
        if self.store is None:
            miss("no-store")
            return
        try:
            data = self.store.get_bytes(digest, kind)
        except IntegrityError as exc:
            self.metrics.inc("store.quarantine_propagated")
            self.runner._note_quarantine_propagated(
                digest, kind, str(exc), "coordinator")
            miss("poisoned")
            return
        if data is None:
            miss("poisoned" if self.store.is_poisoned(digest)
                 else "missing")
            return
        plan = get_fault_plan()
        if plan.active:
            time.sleep(plan.delay_s("slow_fetch", f"fetch:{digest}"))
        total = chunk_count(len(data))
        send_msg(conn, {"type": "artifact_data", "digest": digest,
                        "kind": kind, "size": len(data),
                        "chunks": total})
        for seq, _total, raw in iter_chunks(data):
            crc = chunk_crc(raw)
            wire = raw
            if plan.active and plan.fires("corrupt_chunk",
                                          f"chunk:{digest}:{seq}"):
                # damage the payload but keep the stated CRC: the
                # receiver's transport check must catch it and retry
                if raw:
                    damaged = bytearray(raw)
                    where = plan.position(f"chunk:{digest}:{seq}",
                                          len(damaged))
                    damaged[where] ^= 0x40
                    wire = bytes(damaged)
                else:
                    crc ^= 1
            send_msg(conn, {"type": "artifact_chunk", "digest": digest,
                            "seq": seq, "total": total,
                            "data": encode_chunk(wire), "crc": crc})
        self.metrics.inc("store.fetches_served")
        self.metrics.inc("store.chunks_sent", total)
        self.metrics.inc("store.bytes_sent", len(data))
        self.runner._note_fetch(digest, kind, len(data), total)

    def _artifact_recv(self, conn: socket.socket, worker_id: int,
                       message: dict) -> dict | None:
        """Receive one ``artifact_put`` (head + promised chunk frames)
        and return the ``artifact_ack`` reply — or None when the frames
        cannot be safely drained (the caller drops the connection).

        Heartbeat frames may interleave with the chunk stream (the
        worker's beater shares the socket); they are renewed in place.
        """
        digest = str(message.get("digest") or "")
        kind = str(message.get("kind") or "")
        size = message.get("size")
        chunks = message.get("chunks")
        if (not digest or kind not in ArtifactStore.KINDS
                or not isinstance(size, int) or isinstance(size, bool)
                or size < 0 or size > MAX_ARTIFACT_BYTES
                or chunks != chunk_count(size)):
            # an oversized or garbled put head means the promised chunk
            # stream cannot be trusted either: drop the link
            self.metrics.inc("remote.protocol_errors")
            return None
        parts: list[bytes] = []
        received = 0
        damaged = None
        seq = 0
        while seq < chunks:
            frame = recv_msg(conn)
            if frame is None:
                return None
            if frame.get("type") == "heartbeat":
                self._renew(worker_id, frame.get("task_id"))
                continue
            if frame.get("type") != "artifact_put_chunk":
                self.metrics.inc("remote.protocol_errors")
                return None
            raw = decode_chunk(frame.get("data"))
            if raw is None or frame.get("seq") != seq \
                    or chunk_crc(raw) != frame.get("crc"):
                damaged = "crc"
            else:
                received += len(raw)
                if received > MAX_ARTIFACT_BYTES:
                    self.metrics.inc("remote.protocol_errors")
                    return None
                parts.append(raw)
            seq += 1
        if damaged is None and received != size:
            damaged = "truncated"
        if damaged is not None:
            # transport-level damage: nothing landed, worker may retry
            self.metrics.inc("store.put_rejected")
            return {"type": "artifact_ack", "ok": False,
                    "reason": damaged, "retryable": True}
        data = b"".join(parts)
        actual = payload_digest(data)
        if actual != digest:
            # an intact transfer delivering wrong bytes: quarantine the
            # evidence and refuse — but do NOT poison the claimed
            # digest, whose authoritative copy may be healthy
            self.metrics.inc("store.digest_mismatch")
            self._quarantine_blob(digest, data,
                                  f"put from worker-{worker_id} hashes "
                                  f"to {actual!r}")
            return {"type": "artifact_ack", "ok": False,
                    "reason": "digest-mismatch", "retryable": False}
        if self.store is None:
            return {"type": "artifact_ack", "ok": False,
                    "reason": "no-store", "retryable": False}
        stored = self.store.put_bytes(data, kind, digest=digest)
        if stored is None:
            reason = "poisoned" if self.store.is_poisoned(digest) \
                else "refused"
            return {"type": "artifact_ack", "ok": False,
                    "reason": reason, "retryable": False}
        self.metrics.inc("store.puts_accepted")
        self.metrics.inc("store.chunks_received", chunks)
        self.metrics.inc("store.bytes_received", size)
        label = message.get("label")
        position = message.get("position")
        if isinstance(label, str) and label.startswith("ckpt:") \
                and isinstance(position, int):
            task_key = label[len("ckpt:"):]
            with self._lock:
                current = self._ckpt_index.get(task_key)
                if current is None or position >= current[1]:
                    self._ckpt_index[task_key] = (stored, position)
        return {"type": "artifact_ack", "ok": True, "digest": stored}

    def _quarantine_blob(self, digest: str, data: bytes,
                         reason: str) -> None:
        """Write rejected artifact bytes aside (never silently drop)."""
        try:
            qdir = Path(self.runner.quarantine_dir)
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / (f"artifact-{digest}.{os.getpid()}-"
                           f"{time.monotonic_ns()}.quarantined")
            dest.write_bytes(data)
        except OSError:
            # forensic copy lost (disk full / permissions) — the blob is
            # still rejected; surface the sick quarantine volume
            self.metrics.inc("remote.quarantine_write_failed")

    def _poison_notified(self, worker_id: int, message: dict) -> None:
        """A worker verified corruption on its side of a transfer:
        poison the digest fleet-wide so it is never re-served."""
        digest = str(message.get("digest") or "")
        kind = str(message.get("kind") or "")
        reason = str(message.get("reason") or "")
        if not digest:
            self.metrics.inc("remote.protocol_errors")
            return
        if self.store is not None:
            self.store.poison(
                digest, reason or f"quarantine_notify from "
                                  f"worker-{worker_id}")
        self.metrics.inc("store.quarantine_propagated")
        self.runner._note_quarantine_propagated(
            digest, kind, reason, f"worker-{worker_id}")

    def _release(self, worker_id: int, message: dict) -> None:
        """A worker gave a lease back (it could not obtain a required
        artifact): requeue through the steal path, whose cap hands the
        task to the serial ladder if releases keep happening."""
        task_id = message.get("task_id")
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease.worker != worker_id:
                return
        self.metrics.inc("remote.releases")
        self._steal(task_id,
                    reason=str(message.get("reason") or "released"))

    def _task_errored(self, worker_id: int, message: dict) -> None:
        """A worker reported a genuine task exception: release the lease
        and hand the task to the serial retry ladder (which owns the
        attempt budget), exactly like the local backends do."""
        key = message.get("key", "")
        task_id = message.get("task_id")
        with self._lock:
            lease = self._leases.pop(task_id, None)
            if key not in self._tasks or key in self._committed \
                    or key in self._handed_back:
                return
            self._handed_back.add(key)
        app = lease.app if lease is not None else self._tasks[key][2]
        self.runner._note_error(key, app)

    def _worker_left(self, worker_id: int) -> None:
        with self._lock:
            conn = self._workers.pop(worker_id, None)
            if conn is None:
                return
            closing = self._closing
            if self._workers:
                self._last_worker = time.monotonic()
            stolen = [tid for tid, lease in self._leases.items()
                      if lease.worker == worker_id]
        self.metrics.inc("remote.workers_left")
        self.runner._note_worker_leave(
            worker_id, "closing" if closing else "disconnect")
        if not closing:
            for task_id in stolen:
                self._steal(task_id, reason="worker-left")

    # -- lease stealing --------------------------------------------------------

    def _steal(self, task_id: str, reason: str) -> None:
        """Revoke one lease and requeue (or hand back) its task."""
        runner = self.runner
        now = time.monotonic()
        with self._lock:
            lease = self._leases.pop(task_id, None)
            if lease is None:
                return
            key, app = lease.key, lease.app
            if key in self._committed or key in self._handed_back:
                return
            age = now - lease.start
            timed_out = runner.task_timeout is not None \
                and age > runner.task_timeout
            steals = self._steals.get(key, 0) + 1
            self._steals[key] = steals
            exhausted = steals > MAX_STEALS_PER_TASK
            if not timed_out and not exhausted:
                self._queue.append(key)
        if timed_out:
            # the lease outlived the per-task deadline: this is a hung
            # task, not a sick worker — hand it to the serial ladder
            with self._lock:
                self._handed_back.add(key)
            runner._note_timeout(key, app)
            return
        if exhausted:
            with self._lock:
                self._handed_back.add(key)
            runner._note_requeued(key, app)
            return
        self.metrics.inc("remote.steals")
        runner._note_steal(key, app, lease.worker, age, reason)

    def sweep(self) -> None:
        """Steal every expired lease (called from the batch loop)."""
        now = time.monotonic()
        with self._lock:
            expired = [tid for tid, lease in self._leases.items()
                       if now > lease.deadline]
        for task_id in expired:
            self._steal(task_id, reason="lease-expired")

    # -- batch progress --------------------------------------------------------

    def _finished_locked(self) -> bool:
        return all(key in self._committed or key in self._handed_back
                   for key in self._tasks)

    def finished(self) -> bool:
        with self._lock:
            return self._finished_locked()

    def should_degrade(self) -> bool:
        """Whether the batch should fall back to a local backend: work
        remains, no worker is connected, and none has been for the wait
        budget (measured from batch start when none ever joined)."""
        now = time.monotonic()
        with self._lock:
            if self._finished_locked() or self._workers:
                return False
            since = self._last_worker if self._ever_had_worker \
                else self._started
            return now - since > self.wait_s

    def run(self) -> bool:
        """Drive the batch: sweep leases until every task settles or the
        fleet is gone. Returns True when the batch must degrade."""
        while True:
            if self.finished():
                return False
            if self.should_degrade():
                return True
            self.sweep()
            time.sleep(DEADLINE_POLL_S)


# -- the backend ---------------------------------------------------------------

class RemoteBackend(ExecutionBackend):
    """Fan one batch out to socket-connected ``repro worker`` processes.

    Attributes (settable before the first batch, mainly for tests):

    * ``coord`` — ``host:port`` override for ``REPRO_COORD``.
    * ``self_host`` — force worker self-spawning on (True) or off
      (False); default (None) self-hosts exactly when no coordinator
      address is configured.
    * ``lease_s`` / ``wait_s`` — override the env-derived budgets.
    * ``on_bound`` — callback invoked with the bound ``(host, port)``
      before the batch waits for workers (tests attach in-process
      workers here).
    """

    name = "remote"
    parallel = True

    def __init__(self) -> None:
        self.coord: str | None = None
        self.self_host: bool | None = None
        self.lease_s: float | None = None
        self.wait_s: float | None = None
        self.on_bound = None
        #: worker processes to self-spawn per batch (None = fan-out width)
        self.spawn_workers: int | None = None
        #: artifact-plane mode override for ``REPRO_STORE``
        self.store_mode: str | None = None
        #: private cache dirs handed to self-spawned fetch-mode workers
        self._worker_dirs: list[str] = []

    def run_batch(self, runner, todo, results, progress):
        addr_spec = self.coord if self.coord is not None \
            else os.environ.get(_COORD_ENV, "").strip()
        self_host = self.self_host if self.self_host is not None \
            else not addr_spec
        try:
            host, port = parse_addr(addr_spec) if addr_spec \
                else ("127.0.0.1", 0)
        except ValueError:
            runner._note_remote_degraded(
                f"bad coordinator address {addr_spec!r}", len(todo))
            return self._local_fallback(runner, todo, results, progress)
        lease_s = self.lease_s if self.lease_s is not None \
            else default_lease_s()
        wait_s = self.wait_s if self.wait_s is not None \
            else default_wait_s()
        store_mode = self.store_mode if self.store_mode is not None \
            else default_store_mode()
        store = None
        if store_mode == "fetch":
            try:
                store = ArtifactStore(Path(runner.cache_dir) / "store",
                                      runner.quarantine_dir)
                store.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                # a degraded artifact plane costs throughput, never the
                # campaign: fall back like a lost fleet would
                runner._note_remote_degraded(
                    f"artifact store unavailable ({exc})", len(todo))
                return self._local_fallback(runner, todo, results,
                                            progress)
        coordinator = _Coordinator(runner, todo, results, progress,
                                   lease_s, wait_s,
                                   store_mode=store_mode, store=store)
        try:
            bound = coordinator.start(host, port)
        except OSError as exc:
            runner._note_remote_degraded(
                f"cannot bind {host}:{port} ({exc})", len(todo))
            return self._local_fallback(runner, todo, results, progress)
        procs: list[subprocess.Popen] = []
        try:
            if self_host:
                count = self.spawn_workers if self.spawn_workers \
                    else runner._fanout_workers(len(todo))
                procs = self._spawn(bound, count, store_mode)
                if not procs:
                    coordinator.close()
                    runner._note_remote_degraded(
                        "cannot spawn local workers", len(todo))
                    return self._local_fallback(runner, todo, results,
                                                progress)
            if self.on_bound is not None:
                self.on_bound(bound)
            degraded = coordinator.run()
        finally:
            coordinator.close()
            self._reap(procs)
        if degraded:
            remaining = [entry for entry in todo
                         if entry[0] not in results]
            runner._note_remote_degraded(
                "no live workers", len(remaining))
            return self._local_fallback(runner, remaining, results,
                                        progress)
        return [entry for entry in todo if entry[0] not in results]

    def _local_fallback(self, runner, todo, results, progress):
        """Finish ``todo`` on the auto-picked *local* backend — a dead or
        unreachable fleet must cost throughput, not the campaign."""
        from repro.exec import make_backend
        from repro.exec.auto import auto_pick

        if not todo:
            return []
        choice = auto_pick(pool_cls=runner._pool_cls())
        get_registry().inc(f"remote.fallback.{choice.backend}")
        backend = make_backend(choice.backend)
        if not backend.parallel:
            return list(todo)
        return backend.run_batch(runner, list(todo), results, progress)

    def _spawn(self, addr: tuple[str, int], count: int,
               store_mode: str = "shared") -> list[subprocess.Popen]:
        """Start ``count`` localhost worker subprocesses aimed at the
        self-hosted coordinator. Best-effort: an unspawnable platform
        returns an empty list and the caller degrades. In fetch mode
        each worker gets a private, initially-empty cache dir so the
        self-hosted path exercises the real shared-nothing plane."""
        import tempfile

        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parents[1])
        parts = [pkg_root] + [p for p in
                              env.get("PYTHONPATH", "").split(os.pathsep)
                              if p]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        base = [sys.executable, "-m", "repro", "worker",
                "--coord", f"{addr[0]}:{addr[1]}",
                "--exit-on-disconnect", "--max-idle", "120"]
        procs = []
        for _ in range(max(1, count)):
            command = list(base)
            if store_mode == "fetch":
                try:
                    private = tempfile.mkdtemp(
                        prefix="repro-worker-cache-")
                except OSError:
                    break
                self._worker_dirs.append(private)
                command += ["--no-shared-fs", "--cache-dir", private]
            try:
                procs.append(subprocess.Popen(
                    command, env=env, stdin=subprocess.DEVNULL,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL))
            except OSError:
                break
        if not procs:
            return []
        return procs

    def _reap(self, procs: list[subprocess.Popen]) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 3.0
        for proc in procs:
            timeout = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass  # SIGKILL already sent; the OS will reap it
        import shutil
        dirs, self._worker_dirs = self._worker_dirs, []
        for private in dirs:
            shutil.rmtree(private, ignore_errors=True)


# -- the worker ----------------------------------------------------------------

class _DropConnection(Exception):
    """Injected ``drop_conn`` fault: abandon the socket abruptly."""


class _BufferedRunLog:
    """A runlog stand-in for shared-nothing tasks: collects the records
    a run would have written so they ride the result frame back to the
    coordinator (whose log dir the worker cannot reach). Capped at
    :data:`MAX_FORWARDED_RECORDS`; the overflow is counted so the drop
    is never silent."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.dropped = 0

    def write(self, record: dict) -> None:
        if len(self.records) < MAX_FORWARDED_RECORDS:
            self.records.append(record)
        else:
            self.dropped += 1


class _ArtifactClient:
    """One task's worker-side handle on the artifact plane.

    Fetches blobs by digest over the task's coordinator connection
    (chunked, CRC-checked at the transport layer, digest-verified at
    the content layer), warms the worker's private shard, and pushes
    checkpoint generations back. Transport damage — a bad CRC, a short
    assembly, garbled base64 — is *retryable* and rides the capped
    full-jitter backoff; an intact transfer whose bytes mismatch their
    digest is content corruption: the bytes are quarantined locally and
    a ``quarantine_notify`` escalates so the coordinator poisons the
    digest fleet-wide. A socket that dies mid-transfer cannot be
    resynchronised, so the client goes dark for the task and the caller
    falls back (regenerate, or release the lease under
    ``fetch_strict``).
    """

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 task: dict, store: ArtifactStore | None, metrics,
                 fetch_strict: bool = False) -> None:
        self.sock = sock
        self.lock = lock
        self.artifacts = task.get("artifacts") or {}
        self.checkpoint = task.get("checkpoint")
        self.store = store
        self.metrics = metrics
        self.allow_regen = not fetch_strict
        self.dead = False
        self._permanent = False

    # -- fetch -----------------------------------------------------------------

    def trace_digest(self) -> str | None:
        entry = self.artifacts.get("trace") or {}
        digest = entry.get("digest")
        return digest if isinstance(digest, str) and digest else None

    def fetch(self, digest: str, kind: str) -> bytes | None:
        """The verified bytes for ``digest``, or None when the plane
        cannot supply them (miss, poisoned, exhausted retries, dead
        link)."""
        if self.dead:
            return None
        plan = get_fault_plan()
        for attempt in range(1, FETCH_ATTEMPTS + 1):
            if attempt > 1:
                self.metrics.inc("store.fetch_retries")
                time.sleep(jittered_backoff(
                    RECONNECT_BASE_S, attempt, f"fetch:{digest}",
                    cap=RECONNECT_CAP_S))
            data = self._fetch_once(digest, kind, attempt, plan)
            if data is not None or self.dead:
                return data
            if self._permanent:
                return None
        self.metrics.inc("store.fetch_failures")
        return None

    def _fetch_once(self, digest: str, kind: str, attempt: int,
                    plan) -> bytes | None:
        self._permanent = False
        try:
            send_msg(self.sock, {"type": "artifact_get",
                                 "digest": digest, "kind": kind},
                     self.lock)
            head = recv_msg(self.sock)
        except OSError:
            head = None
        if head is None:
            self.dead = True
            return None
        if head.get("type") == "artifact_miss":
            # missing or poisoned at the source: retrying won't help
            self.metrics.inc("store.fetch_misses")
            self._permanent = True
            return None
        if head.get("type") != "artifact_data":
            self.dead = True
            return None
        size = head.get("size")
        total = head.get("chunks")
        if not isinstance(size, int) or isinstance(size, bool) \
                or size < 0 or size > MAX_ARTIFACT_BYTES \
                or total != chunk_count(size):
            self.metrics.inc("remote.protocol_errors")
            self.dead = True
            return None
        drop_after = None
        if plan.active and plan.fires("truncated_fetch",
                                      f"fetch:{digest}#a{attempt}"):
            # injected torn transfer: the tail chunks are "lost". The
            # frames are still drained (framing stays in sync) but the
            # assembly comes up short — a retryable miss, never data.
            drop_after = plan.position(f"trunc:{digest}:{attempt}",
                                       total)
        parts: list[bytes] = []
        damaged = False
        try:
            for seq in range(total):
                frame = recv_msg(self.sock)
                if frame is None \
                        or frame.get("type") != "artifact_chunk":
                    self.dead = True
                    return None
                raw = decode_chunk(frame.get("data"))
                if raw is None or frame.get("seq") != seq \
                        or chunk_crc(raw) != frame.get("crc"):
                    damaged = True
                    self.metrics.inc("store.chunk_crc_failures")
                    continue
                if drop_after is not None and seq >= drop_after:
                    continue
                parts.append(raw)
        except OSError:
            self.dead = True
            return None
        data = b"".join(parts)
        if damaged or len(data) != size:
            return None  # transport damage: the caller may retry
        actual = payload_digest(data)
        if actual != digest:
            # intact transfer, wrong bytes: content corruption
            self._quarantine(digest, kind, data,
                             f"fetched bytes hash to {actual!r}")
            self._permanent = True
            return None
        self.metrics.inc("store.fetched")
        self.metrics.inc("store.bytes_fetched", len(data))
        self.metrics.inc("store.chunks_fetched", total)
        if self.store is not None:
            self.store.put_bytes(data, kind, digest=digest)
        return data

    def _quarantine(self, digest: str, kind: str, data: bytes,
                    reason: str) -> None:
        self.metrics.inc("store.digest_mismatch")
        if self.store is not None:
            try:
                qdir = self.store.quarantine_dir
                qdir.mkdir(parents=True, exist_ok=True)
                dest = qdir / (f"fetch-{digest}.{os.getpid()}-"
                               f"{time.monotonic_ns()}.quarantined")
                dest.write_bytes(data)
            except OSError:
                # forensic copy lost — rejection still stands; surface
                # the sick quarantine volume
                self.metrics.inc("remote.quarantine_write_failed")
            self.store.poison(digest, reason)
        try:
            send_msg(self.sock, {"type": "quarantine_notify",
                                 "digest": digest, "kind": kind,
                                 "reason": reason}, self.lock)
        except OSError:
            self.dead = True

    # -- materialisation -------------------------------------------------------

    def materialize_trace(self, app: str, path: Path) -> bool:
        """Fetch the app's trace by digest and land it at ``path``
        atomically. True when the file is in place; False sends the
        caller down the local-regeneration path; raises
        :class:`~repro.store.ArtifactUnavailable` when the bytes were
        unobtainable and regeneration is disallowed."""
        digest = self.trace_digest()
        if digest is None:
            if self.allow_regen:
                return False
            raise ArtifactUnavailable(f"no trace digest for {app!r}")
        data = self.fetch(digest, "trace")
        if data is None:
            if self.allow_regen:
                return False
            raise ArtifactUnavailable(
                f"trace {digest!r} for {app!r} unavailable")
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / (path.name + f".{os.getpid()}.tmp")
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            return False  # read-only worker cache: regenerate instead
        self.metrics.inc("store.trace_fetched")
        return True

    def materialize_checkpoint(self, cache_dir, key: str) -> bool:
        """Land the newest pushed checkpoint generation for ``key`` in
        this worker's private checkpoint dir, so a stolen task resumes
        mid-simulation instead of restarting. Best-effort."""
        info = self.checkpoint or {}
        digest = info.get("digest")
        position = info.get("position")
        if not isinstance(digest, str) or not isinstance(position, int) \
                or isinstance(position, bool):
            return False
        dest = (Path(cache_dir) / "checkpoints"
                / f"{key}.e{position:08d}.ckpt")
        if dest.exists():
            return True
        data = self.fetch(digest, "ckpt")
        if data is None:
            return False
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            tmp = dest.parent / (dest.name + f".{os.getpid()}.tmp")
            tmp.write_bytes(data)
            os.replace(tmp, dest)
        except OSError:
            return False
        self.metrics.inc("store.ckpt_fetched")
        return True

    # -- push ------------------------------------------------------------------

    def put(self, data: bytes, kind: str, label: str | None = None,
            position: int | None = None) -> bool:
        """Push one blob to the coordinator's store (chunked, CRC per
        chunk, acked). Best-effort: False just means the coordinator
        keeps serving the artifact from elsewhere."""
        if self.dead or len(data) > MAX_ARTIFACT_BYTES:
            return False
        digest = payload_digest(data)
        head = {"type": "artifact_put", "digest": digest, "kind": kind,
                "size": len(data), "chunks": chunk_count(len(data))}
        if label is not None:
            head["label"] = label
        if position is not None:
            head["position"] = int(position)
        try:
            send_msg(self.sock, head, self.lock)
            for seq, _total, raw in iter_chunks(data):
                send_msg(self.sock,
                         {"type": "artifact_put_chunk", "seq": seq,
                          "data": encode_chunk(raw),
                          "crc": chunk_crc(raw)}, self.lock)
            ack = recv_msg(self.sock)
        except OSError:
            ack = None
        if ack is None:
            self.dead = True
            return False
        if not ack.get("ok"):
            return False
        self.metrics.inc("store.pushed")
        self.metrics.inc("store.bytes_pushed", len(data))
        return True


class _Worker:
    """One worker's connect / pull / simulate / report loop."""

    def __init__(self, coord: str, *, max_idle_s: float | None = None,
                 max_tasks: int | None = None,
                 exit_on_disconnect: bool = False,
                 in_process: bool = False,
                 heartbeats_enabled: bool = True,
                 pre_result_delay_s: float = 0.0,
                 reconnect_cap_s: float = RECONNECT_CAP_S,
                 no_shared_fs: bool = False,
                 cache_dir: str | os.PathLike | None = None,
                 fetch_strict: bool = False,
                 stop_event: threading.Event | None = None) -> None:
        self.host, self.port = parse_addr(coord)
        self.max_idle_s = max_idle_s
        self.max_tasks = max_tasks
        self.exit_on_disconnect = exit_on_disconnect
        self.in_process = in_process
        self.heartbeats_enabled = heartbeats_enabled
        self.pre_result_delay_s = pre_result_delay_s
        self.reconnect_cap_s = reconnect_cap_s
        #: never trust task-frame paths: use a private cache and the
        #: artifact plane even when the coordinator says ``shared``
        self.no_shared_fs = no_shared_fs
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else None
        #: refuse to regenerate when a fetch fails (tests pin the
        #: release-the-lease path with this)
        self.fetch_strict = fetch_strict
        self.stop_event = stop_event or threading.Event()
        self.token = (f"worker-{socket.gethostname()}-{os.getpid()}-"
                      f"{threading.get_ident()}")
        self.tasks_done = 0
        self.metrics = get_registry()
        self._runners: dict[tuple, object] = {}
        self._stores: dict[str, ArtifactStore] = {}

    # -- plumbing --------------------------------------------------------------

    def _sleep(self, seconds: float) -> None:
        self.stop_event.wait(max(0.0, seconds))

    def _stopped(self) -> bool:
        return self.stop_event.is_set()

    def _private_cache_dir(self) -> Path:
        """This worker's own cache root (``--cache-dir``, else the
        worker-local default) — never the coordinator's path."""
        if self.cache_dir is None:
            from repro.sim.experiments import default_cache_dir
            self.cache_dir = default_cache_dir()
        return self.cache_dir

    def _store_for(self, runner) -> ArtifactStore | None:
        """The private shard this worker warms from fetches (None when
        the runner keeps no disk cache to warm)."""
        if not runner.use_disk_cache:
            return None
        root = str(Path(runner.cache_dir) / "store")
        store = self._stores.get(root)
        if store is None:
            store = ArtifactStore(root, runner.quarantine_dir)
            self._stores[root] = store
        return store

    def _runner_for(self, task: dict):
        """A serial runner matching the task's spec (cached per spec so a
        stream of same-campaign tasks shares the in-memory trace cache).
        Worker hazards arm only in dedicated processes — an in-process
        (test-thread) worker must never ``os._exit`` its host.

        The memo key carries everything that shapes a run: the cache
        location, campaign shape, *and* the forwarded env overrides
        (``REPRO_KERNEL`` et al.), so a parked worker serving two
        campaigns with different settings never reuses a stale clone.
        """
        from repro.sim.experiments import ExperimentRunner
        from repro.sim.kernel import KERNEL_NAMES
        from repro.sim.sampling import FIDELITY_NAMES

        shared = task.get("store", "shared") == "shared" \
            and not self.no_shared_fs
        env = task.get("env") or {}
        env_items = tuple(sorted((str(k), str(v))
                                 for k, v in env.items()))
        if shared:
            cache_dir = task["cache_dir"]
            log_dir = task.get("log_dir")
        else:
            # shared-nothing: the coordinator's paths mean nothing here
            # as *locations*, but the campaign's cache_dir is still its
            # cache *identity* — scope the private cache per campaign so
            # a parked worker's hits/misses mirror what a shared-fs
            # worker on that campaign would see, instead of one
            # ever-warm cache bleeding across unrelated campaigns
            campaign = hashlib.sha256(
                str(task.get("cache_dir", "")).encode()).hexdigest()[:12]
            cache_dir = str(self._private_cache_dir() / campaign)
            log_dir = None
        fidelity = task.get("fidelity") or env.get("REPRO_FIDELITY")
        if fidelity not in FIDELITY_NAMES:
            fidelity = "full"  # degrade, never crash a parked worker
        spec = (cache_dir, float(task["scale"]), int(task["seed"]),
                bool(task["use_disk_cache"]), log_dir,
                int(task.get("checkpoint_events", 0)), shared,
                env_items, fidelity)
        runner = self._runners.get(spec)
        if runner is None:
            runner = ExperimentRunner(
                cache_dir=cache_dir, scale=spec[1], seed=spec[2],
                use_disk_cache=spec[3], jobs=1, backend="serial",
                task_timeout=None, max_attempts=1, retry_backoff=0.0,
                log_dir=log_dir, checkpoint_events=spec[5],
                heartbeat_timeout=0.0, mem_limit_mb=0,
                fidelity=fidelity)
            runner.backend_label = "remote"
            runner.is_worker = not self.in_process
            kernel = env.get("REPRO_KERNEL")
            runner.kernel = kernel if kernel in KERNEL_NAMES else None
            self._runners[spec] = runner
        return runner

    # -- the loop --------------------------------------------------------------

    def run(self) -> int:
        """Connect (with capped full-jitter backoff), serve tasks, and
        reconnect on loss or batch end until told to stop — only
        ``exit_on_disconnect`` workers treat a lost/finished coordinator
        as terminal. Returns tasks completed."""
        attempt = 0
        idle_since = time.monotonic()
        while not self._stopped():
            if self.max_idle_s is not None \
                    and time.monotonic() - idle_since > self.max_idle_s:
                break
            attempt += 1
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=5.0)
            except OSError:
                self._sleep(jittered_backoff(
                    RECONNECT_BASE_S, attempt + 1, self.token,
                    cap=self.reconnect_cap_s))
                continue
            if attempt > 1:
                self.metrics.inc("remote.reconnects")
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # latency tweak only; absent on some transports
            reason = None
            try:
                reason, idle_since = self._serve(sock, idle_since)
                attempt = 0
            except _DropConnection:
                pass  # injected fault: reconnect as if the link died
            except OSError:
                pass  # link died mid-serve: the loop reconnects
            finally:
                try:
                    sock.close()
                except OSError:
                    pass  # socket already dead; nothing left to release
            if self.exit_on_disconnect or reason in ("idle", "max-tasks"):
                break
            if reason == "shutdown":
                # batch over, coordinator gone: a parked worker goes
                # back to the connect loop and waits for the next one
                idle_since = time.monotonic()
            if self.max_tasks is not None \
                    and self.tasks_done >= self.max_tasks:
                break
        return self.tasks_done

    def _serve(self, sock: socket.socket,
               idle_since: float) -> tuple[str | None, float]:
        """One connection's lifetime; returns (why it ended, idle stamp).
        The reason is ``"shutdown"`` (coordinator finished its batch),
        ``"idle"`` / ``"max-tasks"`` (this worker's own limits — always
        terminal), or ``None`` (stop event)."""
        lock = threading.Lock()
        send_msg(sock, {"type": "hello", "pid": os.getpid(),
                        "host": socket.gethostname()}, lock)
        welcome = recv_msg(sock)
        if not welcome or welcome.get("type") != "welcome":
            raise OSError("no welcome from coordinator")
        lease_s = float(welcome.get("lease_s", DEFAULT_LEASE_S))
        while not self._stopped():
            if self.max_tasks is not None \
                    and self.tasks_done >= self.max_tasks:
                send_msg(sock, {"type": "goodbye"}, lock)
                return "max-tasks", idle_since
            send_msg(sock, {"type": "request"}, lock)
            message = recv_msg(sock)
            if message is None:
                raise OSError("coordinator went away")
            kind = message.get("type")
            if kind == "task":
                self._run_task(sock, lock, message, lease_s)
                self.tasks_done += 1
                idle_since = time.monotonic()
            elif kind == "idle":
                if self.max_idle_s is not None and \
                        time.monotonic() - idle_since > self.max_idle_s:
                    send_msg(sock, {"type": "goodbye"}, lock)
                    return "idle", idle_since
                self._sleep(float(message.get("poll_s",
                                              WORKER_IDLE_POLL_S)))
            elif kind == "shutdown":
                return "shutdown", idle_since
            else:
                # version skew or corruption, not churn: count it apart
                # from disconnects, then treat the link as unusable
                self.metrics.inc("remote.protocol_errors")
                raise OSError(f"unexpected message {kind!r}")
        return None, idle_since

    def _run_task(self, sock: socket.socket, lock: threading.Lock,
                  task: dict, lease_s: float) -> None:
        plan = get_fault_plan()
        key, app = task["key"], task["app"]
        task_id = task["task_id"]
        token = f"{key}#a{task.get('attempt', 1)}"
        if plan.active and plan.fires("drop_conn", token):
            # the link "dies" right as the task lands: the lease expires
            # (or the leave is noticed) and the task is stolen
            raise _DropConnection(token)
        if not self.in_process:
            plan.maybe_kill_worker(token)
        heartbeat_stop = threading.Event()
        suppress = not self.heartbeats_enabled or \
            (plan.active and plan.fires("stale_lease", token))
        beater = None
        if not suppress:
            interval = max(0.05, lease_s / 3.0)

            def beat():
                while not heartbeat_stop.wait(interval):
                    try:
                        send_msg(sock, {"type": "heartbeat",
                                        "task_id": task_id}, lock)
                    except OSError:
                        return

            beater = threading.Thread(target=beat, daemon=True,
                                      name="repro-worker-heartbeat")
            beater.start()
        error = None
        payload = None
        release_reason = None
        runner = None
        buffered = None
        saved_runlog = None
        try:
            runner = self._runner_for(task)
            runner.worker_attempt = int(task.get("attempt", 1))
            if task.get("store") == "fetch" or self.no_shared_fs:
                client = _ArtifactClient(
                    sock, lock, task, self._store_for(runner),
                    metrics=self.metrics,
                    fetch_strict=self.fetch_strict)
                runner.store_client = client
                if task.get("log_dir"):
                    # the coordinator logs but its log dir is not ours
                    # to write: buffer the records and forward them with
                    # the result
                    buffered = _BufferedRunLog()
                    saved_runlog = runner._runlog
                    runner._runlog = buffered
                if runner.checkpoint_events > 0 \
                        and runner.use_disk_cache:
                    client.materialize_checkpoint(runner.cache_dir, key)

                    def _mirror(ckey, path, state, _client=client):
                        try:
                            _client.put(
                                Path(path).read_bytes(), "ckpt",
                                label=f"ckpt:{ckey}",
                                position=int(
                                    state["loop"]["position"]))
                        except Exception:  # noqa: BLE001 — best-effort
                            # a missed mirror only costs resume
                            # granularity; the local checkpoint and the
                            # lease machinery still cover the task
                            self.metrics.inc(
                                "remote.ckpt_mirror_failed")

                    runner.checkpoint_mirror = _mirror
            config = config_from_dict(task["config"])
            payload = runner.run(app, config).to_dict()
        except (KeyboardInterrupt, SystemExit):
            raise
        except ArtifactUnavailable as exc:
            release_reason = str(exc)
        except BaseException as exc:  # noqa: BLE001 — reported upstream
            error = f"{type(exc).__name__}: {exc}"
        finally:
            heartbeat_stop.set()
            if beater is not None:
                beater.join(timeout=2.0)
            if runner is not None:
                runner.store_client = None
                runner.checkpoint_mirror = None
                if saved_runlog is not None:
                    runner._runlog = saved_runlog
        if self.pre_result_delay_s > 0:
            self._sleep(self.pre_result_delay_s)
        if plan.active:
            self._sleep(plan.delay_s("slow_socket", token))
        if release_reason is not None:
            # the plane could not supply a required artifact: give the
            # lease back for stealing instead of failing the task
            self.metrics.inc("store.releases")
            send_msg(sock, {"type": "release", "task_id": task_id,
                            "key": key, "app": app,
                            "reason": release_reason}, lock)
            return
        if error is not None:
            send_msg(sock, {"type": "error", "task_id": task_id,
                            "key": key, "app": app,
                            "reason": error}, lock)
            recv_msg(sock)
            return
        digest = payload_digest(canonical_json(payload))
        message = {"type": "result", "task_id": task_id, "key": key,
                   "app": app, "digest": digest, "payload": payload}
        if buffered is not None and buffered.records:
            message["runlog"] = buffered.records
            if buffered.dropped:
                self.metrics.inc("store.runlog_dropped",
                                 buffered.dropped)
        copies = 2 if plan.active and plan.fires("dup_result", token) \
            else 1
        for _ in range(copies):
            send_msg(sock, message, lock)
            if recv_msg(sock) is None:
                raise OSError("coordinator went away mid-ack")


def worker_main(coord: str, *, max_idle_s: float | None = None,
                max_tasks: int | None = None,
                exit_on_disconnect: bool = False,
                in_process: bool = False,
                heartbeats_enabled: bool = True,
                pre_result_delay_s: float = 0.0,
                reconnect_cap_s: float = RECONNECT_CAP_S,
                no_shared_fs: bool = False,
                cache_dir: str | os.PathLike | None = None,
                fetch_strict: bool = False,
                stop_event: threading.Event | None = None) -> int:
    """Run one worker against ``coord`` (``host:port``); the entry point
    behind ``repro worker``, also callable in-process (tests run it in
    threads with ``in_process=True`` so process-level hazards never arm).
    ``no_shared_fs`` makes the worker ignore task-frame paths and serve
    everything from its own ``cache_dir`` through the artifact plane.
    Returns the number of tasks completed."""
    worker = _Worker(coord, max_idle_s=max_idle_s, max_tasks=max_tasks,
                     exit_on_disconnect=exit_on_disconnect,
                     in_process=in_process,
                     heartbeats_enabled=heartbeats_enabled,
                     pre_result_delay_s=pre_result_delay_s,
                     reconnect_cap_s=reconnect_cap_s,
                     no_shared_fs=no_shared_fs, cache_dir=cache_dir,
                     fetch_strict=fetch_strict,
                     stop_event=stop_event)
    return worker.run()
