"""Simulator throughput — how fast the trace-driven model itself runs.

Not a paper figure; tracks the cost of the reproduction's hot loop so
regressions in simulation speed are visible. Two loop implementations
exist (``repro.sim.simulator``): the object path over
``list[Instruction]`` and the packed struct-of-arrays fast path. The
benchmarks time both; ``test_record_throughput_snapshot`` writes the
measured speedups to ``output/BENCH_throughput.json`` for the record.

Runtime numbers are machine-dependent — the snapshot embeds the CPU
count so single-core containers (where process fan-out adds overhead
instead of parallelism) are recognisable in recorded results.
"""

import json
import os
import time
from pathlib import Path

from repro.sim import presets
from repro.sim.experiments import ExperimentRunner
from repro.sim.simulator import Simulator
from repro.workloads import EventTrace, get_app

_OUTPUT_DIR = Path(__file__).parent / "output"


def _prewarmed_trace(scale: float = 1.0) -> EventTrace:
    """A trace with every event materialised and packed up front, so the
    benchmark isolates the simulator loop from stream generation."""
    trace = EventTrace(get_app("pixlr"), scale=scale)
    trace._cache_capacity = len(trace) + 4  # defeat the event LRU
    for k in range(len(trace)):
        trace.event(k).packed_true()
        trace.event(k).packed_spec()
        trace.packed_looper_stream(k)
    return trace


def test_baseline_simulation_throughput(benchmark):
    trace = _prewarmed_trace()

    def run():
        return Simulator(trace, presets.nl()).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions > 0


def test_baseline_object_path_throughput(benchmark):
    trace = _prewarmed_trace()

    def run():
        return Simulator(trace, presets.nl(), use_packed=False).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions > 0


def test_esp_simulation_throughput(benchmark):
    trace = _prewarmed_trace()

    def run():
        return Simulator(trace, presets.esp_nl()).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.esp.total_pre_instructions > 0


def test_esp_object_path_throughput(benchmark):
    trace = _prewarmed_trace()

    def run():
        return Simulator(trace, presets.esp_nl(), use_packed=False).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.esp.total_pre_instructions > 0


def test_parallel_grid_throughput(benchmark, tmp_path_factory):
    """Wall-clock of a small (config × app) grid fanned over two worker
    processes. Gains require ≥2 free cores; on a single-core machine the
    fork overhead makes this slower than serial — the point of keeping
    the benchmark is that the recorded number is honest either way."""
    grid_apps = ["bing", "pixlr"]
    grid_configs = [presets.baseline(), presets.esp_nl()]

    def run():
        cache = tmp_path_factory.mktemp("parallel-grid")
        runner = ExperimentRunner(cache_dir=cache, scale=0.25, seed=0,
                                  jobs=2)
        return runner.grid(grid_configs, apps=grid_apps)

    grid = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(grid) == 2


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_record_throughput_snapshot(tmp_path_factory):
    """Measure packed-vs-object and serial-vs-parallel speedups and write
    them to ``output/BENCH_throughput.json``."""
    trace = _prewarmed_trace()
    snapshot: dict = {
        "machine": {"cpu_count": os.cpu_count()},
        "workload": "pixlr scale=1.0 seed=0",
        "single_thread": {},
    }
    for name, reps in (("baseline", 5), ("nl", 5), ("esp_nl", 3)):
        config = presets.by_name(name)
        t_obj = _best_of(
            lambda: Simulator(trace, config, use_packed=False).run(), reps)
        t_packed = _best_of(
            lambda: Simulator(trace, config).run(), reps)
        snapshot["single_thread"][name] = {
            "object_path_s": round(t_obj, 4),
            "packed_path_s": round(t_packed, 4),
            "speedup": round(t_obj / t_packed, 3),
        }

    grid_apps = ["bing", "pixlr"]
    grid_configs = [presets.baseline(), presets.esp_nl()]
    timings = {}
    for label, jobs in (("serial", 1), ("jobs2", 2)):
        cache = tmp_path_factory.mktemp(f"snapshot-{label}")
        runner = ExperimentRunner(cache_dir=cache, scale=0.25, seed=0,
                                  jobs=jobs)
        start = time.perf_counter()
        runner.grid(grid_configs, apps=grid_apps)
        timings[label] = time.perf_counter() - start
    snapshot["grid_2x2_scale0.25"] = {
        "serial_s": round(timings["serial"], 4),
        "jobs2_s": round(timings["jobs2"], 4),
        "parallel_speedup": round(timings["serial"] / timings["jobs2"], 3),
        "note": "fan-out only helps with >=2 free cores; single-core "
                "containers pay fork overhead instead",
    }

    _OUTPUT_DIR.mkdir(exist_ok=True)
    (_OUTPUT_DIR / "BENCH_throughput.json").write_text(
        json.dumps(snapshot, indent=2) + "\n")
    print()
    print(json.dumps(snapshot, indent=2))
    for entry in snapshot["single_thread"].values():
        assert entry["speedup"] > 0
