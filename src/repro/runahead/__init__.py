"""Runahead execution (Mutlu et al., HPCA 2003) — the paper's main
hardware comparison point."""

from repro.runahead.runahead import RunaheadController

__all__ = ["RunaheadController"]
