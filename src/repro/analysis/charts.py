"""Terminal bar charts for the examples and reports.

The paper's figures are bar charts; these helpers render the same data as
Unicode horizontal bars so the examples can show shapes directly in a
terminal, with no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, max_value: float, width: int = 40) -> str:
    """One horizontal bar scaled so ``max_value`` fills ``width`` cells."""
    if max_value <= 0 or value <= 0:
        return ""
    fraction = min(1.0, value / max_value)
    cells = fraction * width
    full = int(cells)
    eighths = round((cells - full) * 8)
    partial = _BLOCKS[eighths] if full < width and eighths > 0 else ""
    return "█" * full + partial


def bar_chart(values: Mapping[str, float], title: str = "",
              width: int = 40, unit: str = "") -> str:
    """Render ``{label: value}`` as an aligned horizontal bar chart.

    Negative values render as left-marked bars so regressions stand out.
    """
    if not values:
        return title
    label_width = max(len(label) for label in values)
    peak = max((abs(v) for v in values.values()), default=0.0)
    lines = [title] if title else []
    for label, value in values.items():
        bar = hbar(abs(value), peak, width)
        sign = "-" if value < 0 else " "
        lines.append(f"{label:<{label_width}} {sign}{bar:<{width + 1}} "
                     f"{value:>8.2f}{unit}")
    return "\n".join(lines)


def grouped_chart(series: Mapping[str, Mapping[str, float]],
                  title: str = "", width: int = 30,
                  unit: str = "") -> str:
    """Render ``{group: {label: value}}`` as grouped bar charts sharing one
    scale (so groups are visually comparable)."""
    if not series:
        return title
    peak = max((abs(v) for group in series.values()
                for v in group.values()), default=0.0)
    label_width = max(len(label) for group in series.values()
                      for label in group)
    lines = [title] if title else []
    for group, values in series.items():
        lines.append(f"{group}:")
        for label, value in values.items():
            bar = hbar(abs(value), peak, width)
            lines.append(f"  {label:<{label_width}} {bar:<{width + 1}} "
                         f"{value:>8.2f}{unit}")
    return "\n".join(lines)
