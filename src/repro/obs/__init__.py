"""Observability for the reproduction: metrics, run logs, progress.

``repro.obs`` gives every subsystem one lightweight way to account for
what it did, without taxing the simulator hot loops when nobody is
looking:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms whose default implementation is a zero-cost no-op
  (enable with ``REPRO_METRICS=1`` or :func:`enable_metrics`);
* :mod:`repro.obs.runlog` — structured JSONL run logs, one record per
  simulation, written atomically next to the result cache;
* :mod:`repro.obs.progress` — a tqdm-free stderr progress line for grid
  fan-outs;
* :mod:`repro.obs.stats` — aggregation of the JSONL logs into the
  ``repro stats`` report.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)
from repro.obs.progress import ProgressLine
from repro.obs.runlog import (
    RUNLOG_SCHEMA,
    RunLogWriter,
    default_log_dir,
    iter_records,
)
from repro.obs.stats import format_table, summarize

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "ProgressLine",
    "RUNLOG_SCHEMA",
    "RunLogWriter",
    "default_log_dir",
    "disable_metrics",
    "enable_metrics",
    "format_table",
    "get_registry",
    "iter_records",
    "set_registry",
    "summarize",
]
