"""The execution-backend interface and the in-process serial backend.

An :class:`ExecutionBackend` owns how one ``run_many`` batch of uncached
(key, app, config) tasks is executed: submission to workers, per-task
deadline accounting (measured from when a task *starts*, never from when
it was queued), straggler cancellation, and handing unfinished tasks back
to the runner's serial retry ladder. The runner keeps the grid logic —
dedup, cache lookups, manifests, attempt budgets — and delegates the
fan-out itself, so every backend shares one recovery path instead of
re-implementing three.

Four implementations exist:

* ``serial`` (:class:`SerialBackend`, here) — no fan-out at all; every
  task flows through the runner's in-process completion ladder with zero
  submission overhead.
* ``thread`` (:mod:`repro.exec.thread`) — a thread pool over per-thread
  runner clones; correct under the GIL today and positioned for
  GIL-releasing compiled kernels.
* ``process`` (:mod:`repro.exec.process`) — worker processes with the
  broken-pool / timeout / memory-pressure recovery ladder.
* ``auto`` (:mod:`repro.exec.auto`) — not a backend class but a picker:
  measures the machine's shape and resolves to one of the other three.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.progress import ProgressLine
    from repro.sim.experiments import ExperimentRunner

#: the valid ``REPRO_BACKEND`` values (``auto`` resolves to the others)
BACKEND_NAMES = ("serial", "thread", "process", "auto")

#: how often the parallel backends poll pending futures for task starts
#: and expired deadlines (seconds); small enough that a deadline is
#: enforced within ~poll of expiry, large enough to stay off the hot path
DEADLINE_POLL_S = 0.05

#: the pending-future wait chunk when no deadline needs enforcing
IDLE_POLL_S = 0.25


class ExecutionBackend:
    """How one batch of uncached grid tasks is executed.

    Stateless across batches: one instance serves every ``run_many`` call
    of a runner. ``run_batch`` fills ``results`` with whatever completed
    and returns the tasks that did not — the runner finishes those through
    its serial attempt ladder (bounded retries, backoff, failure marking),
    which is the single retry hand-back path shared by all backends.
    """

    #: the resolved backend name (``serial`` / ``thread`` / ``process``)
    name = "backend"

    #: whether ``run_many`` should route batches through :meth:`run_batch`
    #: (False means every task goes straight to the serial ladder)
    parallel = False

    def run_batch(self, runner: "ExperimentRunner",
                  todo: list[tuple[str, str, object]],
                  results: dict, progress: "ProgressLine"
                  ) -> list[tuple[str, str, object]]:
        """Execute ``todo`` (``(key, app, config)`` triples), filling
        ``results[key]`` with :class:`~repro.sim.results.SimResult`
        objects; return the entries needing the serial retry ladder."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution: zero submission overhead, no parallelism.

    ``parallel`` is False, so the runner never even calls
    :meth:`run_batch` — the whole batch flows through the completion
    ladder exactly as a ``jobs=1`` runner always has. The method still
    honours the interface (identity) for callers driving a backend
    directly.
    """

    name = "serial"
    parallel = False

    def run_batch(self, runner, todo, results, progress):
        return list(todo)
