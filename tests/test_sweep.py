"""Tests for the parameter-sweep utility."""

import pytest

from repro.sim import presets
from repro.sim.config import SimConfig
from repro.sim.experiments import ExperimentRunner
from repro.sim.sweep import ParameterSweep, core_knob, esp_knob


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(cache_dir=tmp_path_factory.mktemp("cache"),
                            scale=0.5)


APPS = ("pixlr",)


class TestParameterSweep:
    def test_basic_sweep(self, runner):
        sweep = ParameterSweep(
            base=presets.esp_nl(),
            vary=esp_knob("prefetch_lead"),
            values=[50, 190],
            knob="prefetch_lead")
        result = sweep.run(runner, APPS)
        assert len(result.points) == 2
        assert result.points[0].value == 50
        assert "pixlr" in result.points[0].improvements
        assert result.best() in result.points

    def test_format(self, runner):
        sweep = ParameterSweep(presets.esp_nl(), esp_knob("prefetch_lead"),
                               [190], knob="lead")
        text = sweep.run(runner, APPS).format()
        assert "lead" in text
        assert "best" in text

    def test_as_series(self, runner):
        sweep = ParameterSweep(presets.esp_nl(),
                               esp_knob("blist_train_lead"), [4, 8])
        series = sweep.run(runner, APPS).as_series()
        assert set(series) == {"4", "8"}

    def test_configs_named_by_value(self, runner):
        sweep = ParameterSweep(presets.esp_nl(), esp_knob("prefetch_lead"),
                               [99], knob="lead")
        result = sweep.run(runner, APPS)
        assert "lead=99" in result.points[0].config.name

    def test_custom_baseline(self, runner):
        sweep = ParameterSweep(presets.esp_nl(), esp_knob("prefetch_lead"),
                               [190], baseline=presets.nl())
        point = sweep.run(runner, APPS).points[0]
        nl = runner.run("pixlr", presets.nl())
        esp = point.results["pixlr"]
        assert point.improvements["pixlr"] == pytest.approx(
            esp.improvement_over(nl))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterSweep(presets.esp_nl(), esp_knob("prefetch_lead"), [])

    def test_vary_must_return_config(self, runner):
        sweep = ParameterSweep(presets.esp_nl(),
                               lambda cfg, v: "not a config", [1])
        with pytest.raises(TypeError):
            sweep.run(runner, APPS)

    def test_core_knob(self, runner):
        sweep = ParameterSweep(presets.nl(), core_knob("mispredict_penalty"),
                               [15, 30], knob="penalty")
        result = sweep.run(runner, APPS)
        # a larger flush penalty can only slow things down
        assert result.points[0].hmean_improvement >= \
            result.points[1].hmean_improvement

    def test_knob_functions_produce_new_configs(self):
        base = presets.esp_nl()
        varied = esp_knob("prefetch_lead")(base, 500)
        assert varied.esp.prefetch_lead == 500
        assert base.esp.prefetch_lead == 190
        assert isinstance(varied, SimConfig)
