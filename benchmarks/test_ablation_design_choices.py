"""Ablations of ESP's design choices beyond the paper's figures.

The paper fixes several design constants with brief justifications: two
jump-ahead modes (Section 3.1), a 190-instruction prefetch lead and the
70-instruction looper head start (Section 3.6), and the Figure 8 list
budgets. These benchmarks sweep each choice to show the sensitivity around
the chosen point.
"""

import dataclasses

import pytest

from conftest import hmean_improvement

from repro.sim import presets
from repro.sim.config import EspConfig

APPS = ("amazon", "bing", "pixlr")


def esp_with(**esp_changes):
    base = presets.esp_nl()
    return base.replace(esp=dataclasses.replace(base.esp, **esp_changes),
                        name=f"esp_nl[{esp_changes}]")


def improvements(runner, config, apps=APPS):
    base = {app: runner.run(app, presets.baseline()) for app in apps}
    return {app: runner.run(app, config).improvement_over(base[app])
            for app in apps}


def depth_config(depth: int) -> EspConfig:
    return dataclasses.replace(
        presets.esp_nl().esp, depth=depth,
        i_cachelet_bytes=(5632,) + (512,) * (depth - 1),
        d_cachelet_bytes=(5632,) + (512,) * (depth - 1),
        i_list_bytes=(499,) + (68,) * (depth - 1),
        d_list_bytes=(510,) + (57,) * (depth - 1),
        b_list_dir_bytes=(566,) + (80,) * (depth - 1),
        b_list_tgt_bytes=(41,) + (6,) * (depth - 1))


class TestJumpAheadDepth:
    """Section 3.1 / 6.6: two jump-ahead modes capture nearly everything."""

    def test_depth_sweep(self, benchmark, runner):
        def sweep():
            out = {}
            for depth in (1, 2, 4):
                cfg = presets.esp_nl().replace(
                    esp=depth_config(depth), name=f"esp-depth{depth}")
                out[depth] = hmean_improvement(improvements(runner, cfg))
            return out

        gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\njump-ahead depth sweep (improvement %): {gains}")
        # a second mode helps over a single one
        assert gains[2] >= gains[1] - 0.5
        # going beyond two modes buys almost nothing (the paper's point)
        assert abs(gains[4] - gains[2]) < 3.0


class TestPrefetchLead:
    """Section 3.6: prefetches issue 190 instructions ahead of use."""

    def test_lead_sweep(self, benchmark, runner):
        def sweep():
            return {
                lead: hmean_improvement(
                    improvements(runner, esp_with(prefetch_lead=lead)))
                for lead in (20, 190, 1500)
            }

        gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nprefetch-lead sweep (improvement %): {gains}")
        # a too-short lead cannot cover memory latency
        assert gains[190] > gains[20] - 1.0
        # the chosen point is competitive with a much longer lead
        assert gains[190] > gains[1500] - 3.0


class TestListCapacity:
    """Figure 8's list budgets vs halved and doubled provisioning."""

    def test_capacity_sweep(self, benchmark, runner):
        def scaled(factor):
            esp = presets.esp_nl().esp
            return esp_with(
                i_list_bytes=tuple(int(b * factor)
                                   for b in esp.i_list_bytes),
                d_list_bytes=tuple(int(b * factor)
                                   for b in esp.d_list_bytes),
                b_list_dir_bytes=tuple(int(b * factor)
                                       for b in esp.b_list_dir_bytes),
                b_list_tgt_bytes=tuple(max(2, int(b * factor))
                                       for b in esp.b_list_tgt_bytes))

        def sweep():
            return {
                factor: hmean_improvement(
                    improvements(runner, scaled(factor)))
                for factor in (0.5, 1.0, 2.0)
            }

        gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nlist-capacity sweep (improvement %): {gains}")
        # capacity is a real constraint: bigger lists never hurt much
        assert gains[2.0] >= gains[0.5] - 1.0
        # the paper's budget captures most of the doubled budget's benefit
        assert gains[1.0] > gains[0.5] - 2.0


class TestLooperHeadstart:
    """Section 3.6: the looper's ~70 queue-management instructions let
    prefetching start before the event does."""

    def test_headstart_matters_for_event_starts(self, benchmark, runner):
        def sweep():
            with_hs = hmean_improvement(
                improvements(runner, esp_with(looper_headstart=70)))
            without = hmean_improvement(
                improvements(runner, esp_with(looper_headstart=0)))
            return {"with": with_hs, "without": without}

        gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nlooper head-start (improvement %): {gains}")
        # the head start can only help; it mainly covers the event's very
        # first fetches, so the effect is real but modest
        assert gains["with"] >= gains["without"] - 1.0


@pytest.mark.parametrize("mode", ["min_stall"])
class TestStallThreshold:
    """Sensitivity to the minimum-stall trigger threshold."""

    def test_threshold_sweep(self, benchmark, runner, mode):
        def sweep():
            return {
                threshold: hmean_improvement(improvements(
                    runner, esp_with(min_stall_cycles=threshold)))
                for threshold in (20, 60)
            }

        gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nmin-stall-threshold sweep (improvement %): {gains}")
        # jumping on shorter stalls should not be dramatically worse
        assert abs(gains[20] - gains[60]) < 6.0
