"""Per-event pre-execution state: the ESP execution contexts.

ESP persists one execution context per jump-ahead mode (Section 3.4): the
duplicated architectural state (RRAT, PC, SP — here: the resume position in
the speculative stream plus the mode's Path Information Register), and the
hint lists being recorded for the event. Pre-execution is *re-entrant*: the
context lets ESP resume an event's pre-execution mid-stream on the next LLC
miss instead of restarting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.esp.lists import (
    BranchDirectionList,
    BranchTargetList,
    CompressedAddressList,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.branch import PentiumMPredictor
    from repro.isa.instructions import Instruction


@dataclass
class RecordedHints:
    """The lists recorded during one event's pre-execution."""

    i_list: CompressedAddressList
    d_list: CompressedAddressList
    b_dir: BranchDirectionList
    b_tgt: BranchTargetList

    @classmethod
    def for_mode(cls, config, mode: int) -> "RecordedHints":
        """Allocate lists sized for ESP mode ``mode`` (0 = ESP-1)."""
        if config.ideal:
            return cls(CompressedAddressList(0), CompressedAddressList(0),
                       BranchDirectionList(0), BranchTargetList(0))
        return cls(
            CompressedAddressList(config.i_list_bytes[mode]),
            CompressedAddressList(config.d_list_bytes[mode]),
            BranchDirectionList(config.b_list_dir_bytes[mode]),
            BranchTargetList(config.b_list_tgt_bytes[mode]),
        )

    def promote(self, config, mode: int) -> "RecordedHints":
        """Re-home the lists into the (larger) budgets of ``mode`` after the
        event moved one slot closer to execution (Section 4.2)."""
        if self.i_list.unbounded:
            return self
        return RecordedHints(
            self.i_list.absorb_into(config.i_list_bytes[mode]),
            self.d_list.absorb_into(config.d_list_bytes[mode]),
            self.b_dir.absorb_into(config.b_list_dir_bytes[mode]),
            self.b_tgt.absorb_into(config.b_list_tgt_bytes[mode]),
        )

    def state_dict(self) -> dict:
        return {"i_list": self.i_list.state_dict(),
                "d_list": self.d_list.state_dict(),
                "b_dir": self.b_dir.state_dict(),
                "b_tgt": self.b_tgt.state_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "RecordedHints":
        return cls(CompressedAddressList.from_state(state["i_list"]),
                   CompressedAddressList.from_state(state["d_list"]),
                   BranchDirectionList.from_state(state["b_dir"]),
                   BranchTargetList.from_state(state["b_tgt"]))


@dataclass
class PreExecState:
    """Everything ESP persists about one queued event's pre-execution."""

    event_index: int
    #: the speculative instruction stream being pre-executed
    stream: list["Instruction"] = field(repr=False, default=None)
    #: resume position within ``stream`` (the saved PC, conceptually)
    position: int = 0
    #: retired-pre-instruction count (the icount stamped into list entries)
    icount: int = 0
    #: the mode's saved Path Information Register
    pir: int = 0
    #: the mode's private return-address stack (part of the preserved
    #: execution context; keeps speculative frames away from the normal
    #: event's RAS)
    ras: list[int] = field(default_factory=list)
    #: execution-underway bit from the hardware event queue
    started: bool = False
    finished: bool = False
    #: every hint list filled up: pre-executing further gathers nothing, so
    #: the controller stops spending idle cycles on this event
    exhausted: bool = False
    #: hints recorded so far
    hints: RecordedHints | None = None
    #: replicated predictor for the SEPARATE_TABLES design point
    bp_replica: "PentiumMPredictor | None" = None
    #: per-mode working-set tracking for the Figure 13 study:
    #: mode index -> distinct I-blocks / D-blocks touched in that mode
    i_touched_by_mode: dict[int, set[int]] = field(default_factory=dict)
    d_touched_by_mode: dict[int, set[int]] = field(default_factory=dict)
    #: block currently being fetched (re-entry resumes cleanly)
    last_i_block: int = -1

    @property
    def remaining(self) -> int:
        return len(self.stream) - self.position if self.stream else 0

    def state_dict(self) -> dict:
        """JSON-safe snapshot. ``stream`` is deliberately excluded: it is
        re-derivable from the trace via the controller's spec-stream
        provider, which the restore path does for every started slot. The
        touched-by-mode sets are membership-only (the controller consumes
        ``len()``), so sorted listings restore them exactly."""
        return {
            "event_index": self.event_index,
            "position": self.position,
            "icount": self.icount,
            "pir": self.pir,
            "ras": list(self.ras),
            "started": self.started,
            "finished": self.finished,
            "exhausted": self.exhausted,
            "hints": self.hints.state_dict() if self.hints is not None
            else None,
            "bp_replica": self.bp_replica.state_dict()
            if self.bp_replica is not None else None,
            "i_touched_by_mode": [[mode, sorted(blocks)] for mode, blocks
                                  in self.i_touched_by_mode.items()],
            "d_touched_by_mode": [[mode, sorted(blocks)] for mode, blocks
                                  in self.d_touched_by_mode.items()],
            "last_i_block": self.last_i_block,
        }

    @classmethod
    def from_state(cls, state: dict,
                   bp_config=None) -> "PreExecState":
        """Rebuild a snapshot; ``bp_config`` supplies the predictor
        configuration for an embedded ``bp_replica``, when present."""
        replica = None
        if state["bp_replica"] is not None:
            from repro.branch import PentiumMPredictor

            replica = PentiumMPredictor(bp_config)
            replica.load_state(state["bp_replica"])
        return cls(
            event_index=state["event_index"],
            position=state["position"],
            icount=state["icount"],
            pir=state["pir"],
            ras=list(state["ras"]),
            started=state["started"],
            finished=state["finished"],
            exhausted=state["exhausted"],
            hints=RecordedHints.from_state(state["hints"])
            if state["hints"] is not None else None,
            bp_replica=replica,
            i_touched_by_mode={mode: set(blocks) for mode, blocks
                               in state["i_touched_by_mode"]},
            d_touched_by_mode={mode: set(blocks) for mode, blocks
                               in state["d_touched_by_mode"]},
            last_i_block=state["last_i_block"],
        )
