"""Figure 7 — the simulated machine configuration."""

from repro.sim.config import SimConfig
from repro.sim.figures import figure7


def test_figure7_simulator_configuration(benchmark, record_figure):
    result = benchmark.pedantic(figure7, rounds=1, iterations=1)
    record_figure(result)
    text = result.text
    assert "4-wide" in text
    assert "96-entry ROB" in text
    assert "32 KB" in text
    assert "2 MB" in text
    assert "Pentium M" in text


def test_defaults_match_paper():
    cfg = SimConfig()
    assert cfg.core.width == 4
    assert cfg.core.rob_entries == 96
    assert cfg.core.lsq_entries == 16
    assert cfg.core.mispredict_penalty == 15
    assert cfg.memory.l1i.size_bytes == 32 * 1024
    assert cfg.memory.l1i.assoc == 2
    assert cfg.memory.l2.size_bytes == 2 * 1024 * 1024
    assert cfg.memory.l2.assoc == 16
    assert cfg.memory.l2.hit_latency == 21
    assert cfg.memory.dram_latency == 101
    assert cfg.branch.global_entries == 2048
    assert cfg.branch.ibtb_entries == 256
    assert cfg.branch.btb_entries == 2048
    assert cfg.branch.local_entries == 4096
    assert cfg.prefetch.stride_entries == 256
    assert cfg.prefetch.dcu_trigger == 4
