"""Unit tests for the instruction model and stream helpers."""

import pytest

from repro.isa import (
    BLOCK_BYTES,
    INSTR_BYTES,
    KIND_ALU,
    KIND_BRANCH,
    KIND_CALL,
    KIND_IBRANCH,
    KIND_JUMP,
    KIND_LOAD,
    KIND_NAMES,
    KIND_RETURN,
    KIND_STORE,
    Instruction,
    block_of,
    is_branch_kind,
    is_memory_kind,
    stream_footprint,
    summarize_stream,
)


class TestBlockOf:
    def test_zero(self):
        assert block_of(0) == 0

    def test_within_first_block(self):
        assert block_of(63) == 0

    def test_block_boundary(self):
        assert block_of(64) == 1

    def test_large_address(self):
        assert block_of(0x40_0000) == 0x40_0000 // 64

    def test_block_bytes_consistency(self):
        assert block_of(BLOCK_BYTES * 7) == 7


class TestKindPredicates:
    @pytest.mark.parametrize("kind", [KIND_BRANCH, KIND_JUMP, KIND_CALL,
                                      KIND_RETURN, KIND_IBRANCH])
    def test_branch_kinds(self, kind):
        assert is_branch_kind(kind)
        assert not is_memory_kind(kind)

    @pytest.mark.parametrize("kind", [KIND_LOAD, KIND_STORE])
    def test_memory_kinds(self, kind):
        assert is_memory_kind(kind)
        assert not is_branch_kind(kind)

    def test_alu_is_neither(self):
        assert not is_branch_kind(KIND_ALU)
        assert not is_memory_kind(KIND_ALU)

    def test_all_kinds_named(self):
        for kind in (KIND_ALU, KIND_LOAD, KIND_STORE, KIND_BRANCH, KIND_JUMP,
                     KIND_CALL, KIND_RETURN, KIND_IBRANCH):
            assert kind in KIND_NAMES


class TestInstruction:
    def test_defaults(self):
        inst = Instruction(0x1000, KIND_ALU)
        assert inst.addr == 0
        assert inst.taken is False
        assert inst.target == 0

    def test_equality(self):
        a = Instruction(4, KIND_LOAD, addr=128)
        b = Instruction(4, KIND_LOAD, addr=128)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_kind(self):
        assert Instruction(4, KIND_LOAD, addr=1) != \
            Instruction(4, KIND_STORE, addr=1)

    def test_eq_other_type(self):
        assert Instruction(4, KIND_ALU) != "not an instruction"

    def test_slots(self):
        inst = Instruction(4, KIND_ALU)
        with pytest.raises(AttributeError):
            inst.extra_field = 1

    def test_repr_mentions_kind(self):
        assert "load" in repr(Instruction(4, KIND_LOAD, addr=64))
        assert "branch" in repr(Instruction(4, KIND_BRANCH, taken=True,
                                            target=64))


def _sample_stream():
    return [
        Instruction(0, KIND_ALU),
        Instruction(4, KIND_LOAD, addr=256),
        Instruction(8, KIND_STORE, addr=256 + 64),
        Instruction(12, KIND_BRANCH, taken=True, target=64),
        Instruction(64, KIND_BRANCH, taken=False),
        Instruction(68, KIND_CALL, taken=True, target=1024),
        Instruction(1024, KIND_RETURN, taken=True, target=72),
    ]


class TestSummarizeStream:
    def test_counts(self):
        stats = summarize_stream(_sample_stream())
        assert stats.instructions == 7
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.branches == 4
        assert stats.conditional_branches == 2
        assert stats.taken_branches == 3

    def test_footprints(self):
        stats = summarize_stream(_sample_stream())
        # pcs 0..12 in block 0, 64..72 in block 1, 1024 in block 16
        assert len(stats.i_blocks) == 3
        assert stats.i_footprint_bytes == 3 * 64
        # data blocks 4 and 5
        assert len(stats.d_blocks) == 2
        assert stats.d_footprint_bytes == 2 * 64

    def test_empty_stream(self):
        stats = summarize_stream([])
        assert stats.instructions == 0
        assert stats.i_footprint_bytes == 0


class TestStreamFootprint:
    def test_matches_summarize(self):
        stream = _sample_stream()
        i_blocks, d_blocks = stream_footprint(stream)
        stats = summarize_stream(stream)
        assert i_blocks == len(stats.i_blocks)
        assert d_blocks == len(stats.d_blocks)

    def test_instruction_size_constant(self):
        assert INSTR_BYTES == 4
