"""Tests for EXPERIMENTS.md generation."""

from pathlib import Path

from repro.analysis.reporting import (
    DEFAULT_OUTPUT_DIR,
    FIGURE_COMMENTARY,
    generate_markdown,
)


class TestGenerateMarkdown:
    def test_with_recorded_figures(self, tmp_path):
        (tmp_path / "figure9.txt").write_text(
            "Figure 9: Performance of ESP\nNL 15.0\n")
        text = generate_markdown(tmp_path)
        assert "# EXPERIMENTS" in text
        assert "Figure 9: Performance of ESP" in text
        assert "NL 15.0" in text

    def test_missing_figures_noted(self, tmp_path):
        text = generate_markdown(tmp_path)
        assert "not yet generated" in text

    def test_every_commentary_has_paper_and_reproduction(self):
        for stem, commentary in FIGURE_COMMENTARY:
            if stem == "figure7":
                continue  # identical by construction, single paragraph
            assert "Paper" in commentary, stem
            assert "Reproduction" in commentary, stem

    def test_commentary_covers_all_evaluation_artifacts(self):
        stems = {stem for stem, _ in FIGURE_COMMENTARY}
        for figure in ("figure3", "figure6", "figure7", "figure8",
                       "figure9", "figure10", "figure11a", "figure11b",
                       "figure12", "figure13", "figure14", "headline"):
            assert figure in stems

    def test_default_output_dir_points_into_benchmarks(self):
        assert DEFAULT_OUTPUT_DIR.name == "output"
        assert DEFAULT_OUTPUT_DIR.parent.name == "benchmarks"

    def test_regeneration_instructions_included(self, tmp_path):
        text = generate_markdown(tmp_path)
        assert "pytest benchmarks/" in text

    def test_markdown_structure(self, tmp_path):
        (tmp_path / "figure9.txt").write_text("Figure 9: x\n")
        text = generate_markdown(tmp_path)
        # every figure gets a section, fenced code block balanced
        assert text.count("```") % 2 == 0
        assert text.count("## ") >= len(FIGURE_COMMENTARY)

    def test_repo_experiments_md_in_sync(self):
        """EXPERIMENTS.md in the repository matches the recorded outputs
        (regenerate with `python -m repro report > EXPERIMENTS.md`)."""
        repo_root = DEFAULT_OUTPUT_DIR.parents[1]
        committed = repo_root / "EXPERIMENTS.md"
        if not committed.exists() or not DEFAULT_OUTPUT_DIR.exists():
            return  # fresh checkout without generated artefacts
        assert committed.read_text() == generate_markdown()
