#!/usr/bin/env python
"""Inspect one synthetic web-app browsing session event by event.

The paper's motivation (Section 2) is that asynchronous programs interleave
many short, varied events, destroying locality. This example materialises
one session and prints a per-event picture — handler, length, instruction
and data working sets, and whether a speculative pre-execution of the event
would diverge from its eventual execution — then summarises exactly the
characteristics the paper measures (Figure 2's illustration, Section 5's
>99% speculation accuracy).

Usage:
    python examples/webapp_session.py [app] [scale]
"""

import sys
from collections import Counter

from repro.isa import summarize_stream
from repro.workloads import APP_NAMES, EventTrace, get_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "gmaps"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}")

    profile = get_app(app)
    trace = EventTrace(profile, scale=scale)
    print(f"Session: {profile.name} — \"{profile.actions}\"")
    print(f"(paper session: {profile.paper_events:,} events, "
          f"{profile.paper_minstr:,} M instructions; this scaled trace: "
          f"{len(trace)} events)\n")

    header = (f"{'event':>5} {'handler':>8} {'instrs':>8} {'i-set KB':>9} "
              f"{'d-set KB':>9} {'branches':>9} {'diverged':>9}")
    print(header)
    print("-" * len(header))

    handlers = Counter()
    total_instructions = 0
    diverged = 0
    for k in range(len(trace)):
        event = trace.event(k)
        stats = summarize_stream(event.true_stream)
        handlers[event.handler_fid] += 1
        total_instructions += stats.instructions
        diverged += event.diverged
        print(f"{k:>5} {event.handler_fid:>8} {stats.instructions:>8,} "
              f"{stats.i_footprint_bytes / 1024:>9.1f} "
              f"{stats.d_footprint_bytes / 1024:>9.1f} "
              f"{stats.branches:>9,} "
              f"{'yes' if event.diverged else '':>9}")

    print(f"\n{len(trace)} events, {total_instructions:,} instructions, "
          f"{len(handlers)} distinct handlers "
          f"(hottest ran {handlers.most_common(1)[0][1]} times).")
    accuracy = 100.0 * (len(trace) - diverged) / len(trace)
    print(f"Speculative pre-executions match the eventual execution for "
          f"{accuracy:.1f}% of events (paper: >99% — events are largely "
          f"independent, which is what makes Event Sneak Peek accurate).")
    print("Consecutive events run different handlers over different data —"
          " the fine-grained interleaving that destroys locality on a"
          " conventional core.")


if __name__ == "__main__":
    main()
