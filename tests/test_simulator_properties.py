"""Property-based tests over whole simulations (small random workloads)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import presets
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.workloads.apps import AppProfile
from repro.workloads.codebase import CodeImageParams
from repro.workloads.generator import EventTrace

_TRACE_CACHE: dict[int, EventTrace] = {}


def trace_for(seed: int) -> EventTrace:
    if seed not in _TRACE_CACHE:
        profile = AppProfile(
            name=f"prop{seed}", actions="property app", paper_events=1,
            paper_minstr=1,
            code=CodeImageParams(n_handlers=3, funcs_per_handler=3,
                                 n_library_funcs=12, blocks_per_func_mean=5,
                                 block_len_mean=6),
            n_events=6, event_len_mean=500,
            heap_blocks_per_event=8, heap_pool_blocks=64,
            global_blocks_per_handler=24, global_hot_blocks=8,
            shared_blocks=8, stream_blocks=64, seed=seed)
        _TRACE_CACHE[seed] = EventTrace(profile, seed=seed)
    return _TRACE_CACHE[seed]


configs = st.sampled_from(["baseline", "nl", "nl_s", "esp", "esp_nl",
                           "runahead", "runahead_nl", "naive_esp",
                           "bp_separate_tables", "efetch", "pif"])


@given(st.integers(min_value=0, max_value=12), configs)
@settings(max_examples=30, deadline=None)
def test_any_config_completes_with_consistent_counters(seed, preset):
    result = Simulator(trace_for(seed), presets.by_name(preset)).run()
    assert result.instructions > 0
    assert result.cycles >= result.instructions \
        * SimConfig().core.base_cpi * 0.999
    assert 0 <= result.l1i_misses <= result.l1i_accesses
    assert 0 <= result.l1d_misses <= result.l1d_accesses
    assert 0 <= result.branch_mispredicts <= result.branches
    assert result.llc_i_misses <= result.l1i_misses
    assert result.llc_d_misses <= result.l1d_misses
    total_stall = (result.stall_ifetch + result.stall_data
                   + result.stall_branch)
    assert result.cycles >= total_stall


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=12, deadline=None)
def test_perfect_all_is_fastest(seed):
    trace = trace_for(seed)
    perfect = Simulator(trace, presets.perfect_all()).run()
    for preset in ("baseline", "esp_nl", "runahead_nl"):
        other = Simulator(trace, presets.by_name(preset)).run()
        assert other.cycles >= perfect.cycles


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=10, deadline=None)
def test_instruction_counts_config_invariant(seed):
    """The retired-instruction count is a property of the trace, not the
    machine configuration."""
    trace = trace_for(seed)
    counts = {
        Simulator(trace, presets.by_name(name)).run().instructions
        for name in ("baseline", "nl", "esp_nl", "runahead_nl")
    }
    assert len(counts) == 1


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=10, deadline=None)
def test_esp_determinism_across_runs(seed):
    trace = trace_for(seed)
    a = Simulator(trace, presets.esp_nl()).run()
    b = Simulator(trace, presets.esp_nl()).run()
    assert a.cycles == b.cycles
    assert a.esp.pre_instructions == b.esp.pre_instructions
    assert a.branch_mispredicts == b.branch_mispredicts
