"""The L1-I / L1-D / unified-L2 / DRAM hierarchy.

Latency model (Figure 7): an L1 hit costs nothing beyond the pipelined
2-cycle access; an L2 hit exposes its 21-cycle latency; an L2 (last-level)
miss exposes ``21 + 101`` cycles and is flagged ``llc_miss`` — those are the
events that trigger runahead periods and ESP jump-aheads.

Prefetch timeliness is modelled explicitly. A prefetch issued at cycle *t*
for a block whose data currently lives at a level with residual latency *L*
becomes usable at ``t + L``. A demand access before that pays only the
remainder (a partial hit); a demand access after that is a full hit, at which
point the block is installed in L1 (and L2). Filling at consumption time
approximates a prefetch that arrives just ahead of use — ESP issues its list
prefetches only ``prefetch_lead`` instructions early, so the in-L1 window is
short. The *naive* ESP design of Figure 10 instead fetches straight into
L1/L2 at pre-execution time via :meth:`MemoryHierarchy.fetch_into`, which is
what exposes it to the pollution the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import SetAssocCache
from repro.sim.config import MemoryConfig


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    #: stall cycles exposed beyond the pipelined L1 hit
    latency: int
    #: True if the access had to go to DRAM
    llc_miss: bool
    #: True if the access hit in L1 (after any prefetch consumption)
    l1_hit: bool
    #: True if a pending prefetch fully or partially covered the miss
    prefetched: bool = False


@dataclass
class PrefetchStats:
    """Prefetch effectiveness counters for one side (I or D)."""

    issued: int = 0
    #: demand access found the prefetched data fully ready
    useful: int = 0
    #: demand access arrived before the prefetch completed (partial cover)
    late: int = 0
    #: dropped without ever being referenced
    useless: int = 0


class _PendingPrefetches:
    """In-flight and completed-but-unconsumed prefetches for one side."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.ready_at: dict[int, int] = {}
        self.stats = PrefetchStats()
        #: when set (a list), every membership-changing operation is
        #: appended as ``(1, block, ready)`` for issues and ``(0, block,
        #: 0)`` for consumes — the vector kernel's memo records these so a
        #: replayed event can re-apply the exact membership evolution via
        #: :meth:`replay_ops` without re-simulating (see repro.sim.kernel)
        self.log: list | None = None

    def issue(self, block: int, ready_cycle: int) -> None:
        pending = self.ready_at
        log = self.log
        if log is not None:
            log.append((1, block, ready_cycle))
        if block in pending:
            # keep the earlier completion time
            if ready_cycle < pending[block]:
                pending[block] = ready_cycle
            return
        if len(pending) >= self.capacity:
            # evict the oldest-issued entry; it never got used
            oldest = next(iter(pending))
            del pending[oldest]
            self.stats.useless += 1
        pending[block] = ready_cycle
        self.stats.issued += 1

    def consume(self, block: int, cycle: int) -> int | None:
        """If ``block`` was prefetched, return residual wait cycles (>= 0)."""
        ready = self.ready_at.pop(block, None)
        if ready is None:
            return None
        log = self.log
        if log is not None:
            log.append((0, block, 0))
        if ready <= cycle:
            self.stats.useful += 1
            return 0
        self.stats.late += 1
        return ready - cycle

    def replay_ops(self, ops) -> None:
        """Re-apply a recorded operation log to the pending table.

        Reproduces exactly what the recorded live execution did to
        membership, completion times and insertion order — including
        capacity evictions, which re-derive from the replayed state — but
        leaves the stats counters alone (a memo replay patches those to
        recorded absolutes instead)."""
        pending = self.ready_at
        capacity = self.capacity
        for op, block, ready in ops:
            if op == 0:
                pending.pop(block, None)
                continue
            current = pending.get(block)
            if current is not None:
                if ready < current:
                    pending[block] = ready
                continue
            if len(pending) >= capacity:
                oldest = next(iter(pending))
                del pending[oldest]
            pending[block] = ready

    def clear(self) -> None:
        self.stats.useless += len(self.ready_at)
        self.ready_at.clear()

    def state_dict(self) -> dict:
        # ready_at insertion order is load-bearing (oldest-first eviction),
        # so serialize as an ordered pair list, never a JSON object
        return {
            "ready": [[block, ready] for block, ready
                      in self.ready_at.items()],
            "stats": [self.stats.issued, self.stats.useful,
                      self.stats.late, self.stats.useless],
        }

    def load_state(self, state: dict) -> None:
        self.ready_at = {block: ready for block, ready in state["ready"]}
        (self.stats.issued, self.stats.useful,
         self.stats.late, self.stats.useless) = state["stats"]


class MemoryHierarchy:
    """Two-level cache hierarchy with prefetch timeliness tracking."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        cfg = self.config
        self.l1i = SetAssocCache(cfg.l1i.size_bytes, cfg.l1i.assoc,
                                 cfg.l1i.line_bytes, name="L1-I")
        self.l1d = SetAssocCache(cfg.l1d.size_bytes, cfg.l1d.assoc,
                                 cfg.l1d.line_bytes, name="L1-D")
        self.l2 = SetAssocCache(cfg.l2.size_bytes, cfg.l2.assoc,
                                cfg.l2.line_bytes, name="L2")
        self.l2_latency = cfg.l2.hit_latency
        self.mem_latency = cfg.l2.hit_latency + cfg.dram_latency
        self._pending = {"i": _PendingPrefetches(), "d": _PendingPrefetches()}
        #: DRAM-bus bandwidth model (0 = unmodelled): time the bus is busy
        self._transfer_cycles = cfg.dram_line_transfer_cycles
        self._dram_free = 0.0
        #: cycles of queuing delay added by bus contention
        self.bandwidth_stall_cycles = 0.0

    def _dram_latency(self, cycle: int) -> int:
        """DRAM access latency at ``cycle``, including bus queuing when
        bandwidth modelling is enabled."""
        if not self._transfer_cycles:
            return self.mem_latency
        start = max(float(cycle), self._dram_free)
        self._dram_free = start + self._transfer_cycles
        queuing = start - cycle
        self.bandwidth_stall_cycles += queuing
        return self.mem_latency + int(queuing)

    # -- demand accesses ---------------------------------------------------

    def access(self, side: str, block: int, cycle: int) -> AccessResult:
        """Demand access on side ``"i"`` or ``"d"`` at ``cycle``."""
        l1 = self.l1i if side == "i" else self.l1d
        if l1.lookup(block):
            return AccessResult(latency=0, llc_miss=False, l1_hit=True)
        return self.miss_after_l1(side, block, cycle)

    def miss_after_l1(self, side: str, block: int, cycle: int
                      ) -> AccessResult:
        """Continuation of :meth:`access` after an L1 demand miss.

        The simulator's packed fast path performs the L1 lookup (recency +
        stats update) inline and calls this only for the miss minority, so
        the hit majority pays no function calls and no
        :class:`AccessResult` allocation.
        """
        # a pending prefetch may cover the miss, fully or partially
        l1 = self.l1i if side == "i" else self.l1d
        residual = self._pending[side].consume(block, cycle)
        if residual is not None:
            l1.fill(block)
            self.l2.fill(block)
            return AccessResult(latency=residual, llc_miss=False,
                                l1_hit=False, prefetched=True)

        if self.l2.lookup(block):
            l1.fill(block)
            return AccessResult(latency=self.l2_latency, llc_miss=False,
                                l1_hit=False)

        self.l2.fill(block)
        l1.fill(block)
        return AccessResult(latency=self._dram_latency(cycle),
                            llc_miss=True, l1_hit=False)

    def access_i(self, block: int, cycle: int) -> AccessResult:
        return self.access("i", block, cycle)

    def access_d(self, block: int, cycle: int) -> AccessResult:
        return self.access("d", block, cycle)

    # -- prefetch paths ------------------------------------------------------

    def residency_latency(self, side: str, block: int) -> int:
        """Latency a fetch of ``block`` would see right now (no side effects)."""
        l1 = self.l1i if side == "i" else self.l1d
        if l1.contains(block):
            return 0
        if self.l2.contains(block):
            return self.l2_latency
        return self.mem_latency

    def prefetch(self, side: str, block: int, cycle: int) -> bool:
        """Issue a timeliness-tracked prefetch. Returns False if redundant."""
        l1 = self.l1i if side == "i" else self.l1d
        if l1.contains(block):
            return False
        if self.l2.contains(block):
            latency = self.l2_latency
        else:
            latency = self._dram_latency(cycle)
        self._pending[side].issue(block, cycle + latency)
        return True

    def fetch_into(self, side: str, block: int) -> None:
        """Immediately install ``block`` in L1 and L2 (the naive-ESP and
        runahead warm-up path). Evictions pollute like any other fill."""
        l1 = self.l1i if side == "i" else self.l1d
        self.l2.fill(block)
        l1.fill(block)

    def prefetch_stats(self, side: str) -> PrefetchStats:
        """The prefetch-timeliness counters for side ``"i"`` or ``"d"``."""
        return self._pending[side].stats

    def set_pending_log(self, side: str, log: list | None) -> None:
        """Attach (or detach, with ``None``) a pending-prefetch operation
        log for one side — the vector kernel's memo recording hook."""
        self._pending[side].log = log

    def pending_table(self, side: str) -> "_PendingPrefetches":
        """The pending-prefetch table for one side (memo replay hook)."""
        return self._pending[side]

    def state_fingerprint(self) -> tuple:
        """Cheap occupancy fingerprint used in memo-token derivation.

        Not a full content digest — the vector kernel only consults the
        memo for virgin simulators, where every structure is empty, so a
        size/counter summary is enough to key "fresh state" and cheap
        enough to compute unconditionally."""
        return (len(self.l1i), len(self.l1d), len(self.l2),
                self.l1i.stats.accesses, self.l1d.stats.accesses,
                self.l2.stats.accesses,
                len(self._pending["i"].ready_at),
                len(self._pending["d"].ready_at),
                self._dram_free, self.bandwidth_stall_cycles)

    def publish_metrics(self, registry) -> None:
        """Fold the demand-cache hit/miss and prefetch-timeliness counters
        into a :class:`~repro.obs.metrics.MetricsRegistry` (called once per
        run when metrics are enabled — the hierarchy keeps these counters
        anyway, so demand accesses pay nothing for observability)."""
        for cache in (self.l1i, self.l1d, self.l2):
            stats = cache.stats
            label = cache.name.lower().replace("-", "")
            registry.inc(f"mem.{label}.hits", stats.accesses - stats.misses)
            registry.inc(f"mem.{label}.misses", stats.misses)
        for side in ("i", "d"):
            stats = self._pending[side].stats
            registry.inc(f"mem.prefetch.{side}.issued", stats.issued)
            registry.inc(f"mem.prefetch.{side}.useful", stats.useful)
            registry.inc(f"mem.prefetch.{side}.late", stats.late)
            registry.inc(f"mem.prefetch.{side}.useless", stats.useless)
        if self.bandwidth_stall_cycles:
            registry.inc("mem.bandwidth_stall_cycles",
                         int(self.bandwidth_stall_cycles))

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of every mutable piece of hierarchy state:
        cache arrays, pending prefetches, and the DRAM-bus model."""
        return {
            "l1i": self.l1i.state_dict(),
            "l1d": self.l1d.state_dict(),
            "l2": self.l2.state_dict(),
            "pending": {side: pending.state_dict()
                        for side, pending in self._pending.items()},
            "dram_free": self._dram_free,
            "bandwidth_stall_cycles": self.bandwidth_stall_cycles,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.l1i.load_state(state["l1i"])
        self.l1d.load_state(state["l1d"])
        self.l2.load_state(state["l2"])
        for side, pending in self._pending.items():
            pending.load_state(state["pending"][side])
        self._dram_free = state["dram_free"]
        self.bandwidth_stall_cycles = state["bandwidth_stall_cycles"]

    def drop_pending(self, side: str) -> None:
        """Discard unconsumed prefetches (used between events when recorded
        hints are known to be stale)."""
        self._pending[side].clear()
