"""Figure 14 — energy overhead.

Paper: ESP executes ~21.2% extra instructions (per-app 11.7%-31.5%) yet
costs only ~8% more energy, because the shorter runtime claws back static
energy and fewer mispredictions cut wrong-path work.
"""

from conftest import mean

from repro.sim.figures import figure14


def test_figure14_energy(benchmark, runner, record_figure):
    result = benchmark.pedantic(figure14, args=(runner,), rounds=1,
                                iterations=1)
    record_figure(result)
    energy = mean(result.series["energy overhead vs NL"])
    extra = mean(result.series["extra instructions"])

    # ESP pre-executes a meaningful fraction of extra instructions
    # (paper: ~21%)
    assert 5.0 < extra < 45.0
    # the energy overhead is a small fraction of the instruction overhead
    # (paper: ~8% energy for ~21% instructions)
    assert energy < extra
    assert -5.0 < energy < 20.0


def test_energy_overhead_bounded_per_app(runner):
    series = figure14(runner).series["energy overhead vs NL"]
    for app, overhead in series.items():
        assert overhead < 30.0, f"{app} energy overhead out of range"
