"""Section 7 — comparison against EFetch and PIF.

Paper: "Compared to a recent instruction prefetcher, EFetch, ESP incurs 3x
less hardware overhead and attains 6% higher performance. Compared to PIF,
ESP incurs 15x less hardware overhead and attains 10% higher performance."
"""

from conftest import hmean_improvement

from repro.energy import esp_area_budget
from repro.prefetch import EfetchPrefetcher, PifPrefetcher
from repro.sim import presets

APPS = ("amazon", "bing", "cnn", "pixlr")


def _improvement(runner, config):
    base = {app: runner.run(app, presets.baseline()) for app in APPS}
    return hmean_improvement({
        app: runner.run(app, config).improvement_over(base[app])
        for app in APPS})


def test_related_prefetcher_comparison(benchmark, runner):
    def compare():
        return {
            "EFetch": _improvement(runner, presets.efetch()),
            "PIF": _improvement(runner, presets.pif()),
            "ESP + NL": _improvement(runner, presets.esp_nl()),
        }

    gains = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nSection 7 comparison (improvement % over no prefetching): "
          f"{gains}")
    # ESP outperforms both related instruction prefetchers
    assert gains["ESP + NL"] > gains["EFetch"]
    assert gains["ESP + NL"] > gains["PIF"]
    # and EFetch (designed for event-driven code) beats generic PIF here
    assert gains["EFetch"] > gains["PIF"]


def test_hardware_overhead_ratios():
    """ESP's storage is a small fraction of either prefetcher's."""
    esp_bytes = sum(budget.total for budget in esp_area_budget())
    efetch_bytes = EfetchPrefetcher().hardware_bytes()
    pif_bytes = PifPrefetcher().hardware_bytes()
    # paper: 3x and 15x less hardware than EFetch and PIF respectively
    assert 2.0 < efetch_bytes / esp_bytes < 5.0
    assert 10.0 < pif_bytes / esp_bytes < 25.0
