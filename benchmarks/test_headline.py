"""Sections 1 / 6.1 — the abstract's headline numbers.

Paper: against the realistic baseline (next-line + stride prefetching),
ESP improves the seven web applications by ~16% on average while
traditional runahead achieves only ~6.4%.
"""

from conftest import hmean_improvement

from repro.sim.figures import headline


def test_headline_numbers(benchmark, runner, record_figure):
    result = benchmark.pedantic(headline, args=(runner,), rounds=1,
                                iterations=1)
    record_figure(result)
    esp = hmean_improvement(result.series["ESP + NL over NL + S"])
    runahead = hmean_improvement(result.series["Runahead + NL over NL + S"])

    # both beat the NL+S baseline on (harmonic) average
    assert esp > 0
    # ESP's margin over runahead is the paper's headline claim
    assert esp > runahead
    # and the margin is substantial (paper: 16% vs 6.4%, a ~2.5x ratio)
    assert esp > 1.5 * max(runahead, 1.0)
