"""PIF-style proactive instruction fetch (Ferdman, Kaynak & Falsafi,
MICRO 2011) — simplified.

The paper's related-work comparison (Section 7): "Compared to PIF, ESP
incurs 15x less hardware overhead and attains 10% higher performance."
This model lets the repository rerun that comparison.

PIF records the *retire-order* stream of instruction-cache block accesses
into a large circular history buffer, with an index from block address to
its most recent position in the history. When fetch touches a block that
heads a recorded sequence, PIF replays the blocks that followed it last
time as prefetches. The design's strength is replaying long, exact
temporal streams; its weakness — the reason it needs hundreds of kilobytes
of state — is that the history must cover the application's full
instruction working set to find matches.

Simplifications versus the original: retire-order compaction of
spatial-region footprints is approximated by block granularity, and the
stream address buffer is folded into the replay window.
"""

from __future__ import annotations

from repro.prefetch.base import Prefetcher

#: bytes of storage per history entry (a compacted block record; the
#: original stores ~4-byte region records plus index overhead)
_BYTES_PER_ENTRY = 5


class PifPrefetcher(Prefetcher):
    """Temporal-stream instruction prefetcher with a circular history."""

    def __init__(self, history_entries: int = 32 * 1024,
                 replay_degree: int = 4, lookahead: int = 2) -> None:
        if history_entries < 2:
            raise ValueError("history needs at least two entries")
        self.history_entries = history_entries
        self.replay_degree = replay_degree
        self.lookahead = lookahead
        self._history: list[int] = [-1] * history_entries
        self._head = 0
        self._index: dict[int, int] = {}
        #: replay cursor into the history (None when not streaming)
        self._replay_pos: int | None = None
        self._replayed = 0

    def hardware_bytes(self) -> int:
        """Approximate storage the design would need (the Section 7
        comparison point; the original PIF evaluates ~200 KB)."""
        index_bytes = self.history_entries // 4 * 7  # sparse index
        return self.history_entries * _BYTES_PER_ENTRY + index_bytes

    def observe(self, pc: int, block: int) -> list[int]:
        history = self._history
        n = self.history_entries
        prev_slot = (self._head - 1) % n

        prefetches: list[int] = []
        if self._replay_pos is not None:
            # streaming: check we are still on the recorded path
            if history[self._replay_pos] == block:
                self._replay_pos = (self._replay_pos + 1) % n
                prefetches.extend(self._replay_window())
            else:
                self._replay_pos = None
                self._replayed = 0
        if self._replay_pos is None:
            # the *previous* occurrence of this block, before the current
            # access is recorded over it
            last = self._index.get(block)
            if last is not None and last != prev_slot:
                # block heads a recorded stream: replay what followed it
                self._replay_pos = (last + 1) % n
                self._replayed = 0
                prefetches.extend(self._replay_window())

        # record the access in retire order (skip exact repeats)
        if history[prev_slot] != block:
            evicted = history[self._head]
            if evicted >= 0 and self._index.get(evicted) == self._head:
                del self._index[evicted]
            history[self._head] = block
            self._index[block] = self._head
            self._head = (self._head + 1) % n
        return prefetches

    def _replay_window(self) -> list[int]:
        """The next ``replay_degree`` recorded blocks past the cursor."""
        out: list[int] = []
        if self._replay_pos is None:
            return out
        pos = (self._replay_pos + self.lookahead) % self.history_entries
        for _ in range(self.replay_degree):
            block = self._history[pos]
            if block >= 0:
                out.append(block)
            pos = (pos + 1) % self.history_entries
        return out

    def reset(self) -> None:
        self._history = [-1] * self.history_entries
        self._head = 0
        self._index.clear()
        self._replay_pos = None
        self._replayed = 0

    def state_dict(self) -> dict:
        return {
            "history": list(self._history),
            "head": self._head,
            "index": [[block, pos] for block, pos in self._index.items()],
            "replay_pos": self._replay_pos,
            "replayed": self._replayed,
        }

    def load_state(self, state: dict) -> None:
        self._history = list(state["history"])
        self._head = state["head"]
        self._index = {block: pos for block, pos in state["index"]}
        self._replay_pos = state["replay_pos"]
        self._replayed = state["replayed"]

    def metrics_snapshot(self) -> dict[str, float]:
        """Index size (distinct blocks with a recorded position)."""
        return {"prefetch.pif.index_entries": len(self._index)}
